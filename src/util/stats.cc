#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace odutil {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }

double RunningStats::max() const { return max_; }

double StudentT90(size_t degrees_of_freedom) {
  // Two-sided 90% (alpha = 0.10, 0.95 quantile).
  static const double kTable[] = {
      0.0,   6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
      1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729,
      1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699,
      1.697,
  };
  constexpr size_t kTableSize = sizeof(kTable) / sizeof(kTable[0]);
  if (degrees_of_freedom == 0) {
    return 0.0;
  }
  if (degrees_of_freedom < kTableSize) {
    return kTable[degrees_of_freedom];
  }
  return 1.645;  // Normal limit.
}

Summary Summarize(const std::vector<double>& samples) {
  RunningStats stats;
  for (double s : samples) {
    stats.Add(s);
  }
  Summary out;
  out.n = stats.count();
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  out.min = stats.min();
  out.max = stats.max();
  if (out.n >= 2) {
    out.ci90_halfwidth =
        StudentT90(out.n - 1) * out.stddev / std::sqrt(static_cast<double>(out.n));
  }
  return out;
}

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  OD_CHECK(x.size() == y.size());
  OD_CHECK(x.size() >= 2);
  size_t n = x.size();
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  double mx = sx / static_cast<double>(n);
  double my = sy / static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  LinearFit fit;
  OD_CHECK(sxx > 0.0);
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace odutil
