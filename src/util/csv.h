// Minimal CSV writer.
//
// The timeline benches (Figure 19) can dump their series for external
// plotting.  Fields containing commas, quotes, or newlines are quoted per
// RFC 4180.

#ifndef SRC_UTIL_CSV_H_
#define SRC_UTIL_CSV_H_

#include <cstdio>
#include <string>
#include <vector>

namespace odutil {

class CsvWriter {
 public:
  // Opens `path` for writing; Check ok() before use.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  void WriteRow(const std::vector<std::string>& cells);

  // Convenience for numeric rows.
  void WriteNumericRow(const std::vector<double>& values, int precision = 6);

  int rows_written() const { return rows_; }

  // Escapes one field per RFC 4180 (exposed for testing).
  static std::string Escape(const std::string& field);

 private:
  std::FILE* file_ = nullptr;
  int rows_ = 0;
};

}  // namespace odutil

#endif  // SRC_UTIL_CSV_H_
