// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded, so the logger is
// deliberately simple: printf-style formatting to stderr, filtered by a
// global level.  Benches set the level to kWarn so that figure output stays
// clean; tests may raise it to kDebug when diagnosing.

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdarg>

namespace odutil {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

// Sets the minimum level that will be emitted.  Returns the previous level.
LogLevel SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging.  The format string is checked by the compiler.
void Log(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace odutil

#define OD_LOG_DEBUG(...) ::odutil::Log(::odutil::LogLevel::kDebug, __VA_ARGS__)
#define OD_LOG_INFO(...) ::odutil::Log(::odutil::LogLevel::kInfo, __VA_ARGS__)
#define OD_LOG_WARN(...) ::odutil::Log(::odutil::LogLevel::kWarn, __VA_ARGS__)
#define OD_LOG_ERROR(...) ::odutil::Log(::odutil::LogLevel::kError, __VA_ARGS__)

#endif  // SRC_UTIL_LOGGING_H_
