#include "src/util/csv.h"

namespace odutil {

CsvWriter::CsvWriter(const std::string& path) { file_ = std::fopen(path.c_str(), "w"); }

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (file_ == nullptr) {
    return;
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    std::fputs(Escape(cells[i]).c_str(), file_);
    std::fputc(i + 1 < cells.size() ? ',' : '\n', file_);
  }
  ++rows_;
}

void CsvWriter::WriteNumericRow(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    cells.emplace_back(buf);
  }
  WriteRow(cells);
}

}  // namespace odutil
