#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace odutil {
namespace {

// SplitMix64 step, used for seeding.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  state_ = SplitMix64(s);
  inc_ = SplitMix64(s) | 1ULL;  // The PCG increment must be odd.
  // Warm up once so that similar seeds diverge immediately.
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
  uint32_t rot = static_cast<uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  OD_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int Rng::UniformInt(int lo, int hi) {
  OD_DCHECK(lo <= hi);
  uint32_t span = static_cast<uint32_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 32-bit range requested.
    return static_cast<int>(NextU32());
  }
  // Rejection sampling to avoid modulo bias.
  uint32_t limit = UINT32_MAX - UINT32_MAX % span;
  uint32_t v = NextU32();
  while (v >= limit) {
    v = NextU32();
  }
  return lo + static_cast<int>(v % span);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double mean) {
  OD_DCHECK(mean > 0.0);
  double u = NextDouble();
  while (u <= 1e-300) {
    u = NextDouble();
  }
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace odutil
