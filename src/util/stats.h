// Summary statistics used by the benchmark harness.
//
// The paper reports each measurement as the mean of five or ten trials with
// a sample standard deviation or a 90% confidence interval; RunningStats and
// Summarize() provide exactly those quantities.

#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace odutil {

// Single-pass accumulator for mean and variance (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const;
  // Sample variance (divides by n - 1).
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// A complete summary of a set of trials.
struct Summary {
  size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  // Half-width of the 90% confidence interval on the mean (Student's t).
  double ci90_halfwidth = 0.0;
};

Summary Summarize(const std::vector<double>& samples);

// Two-sided Student's t critical value for 90% confidence with the given
// degrees of freedom (exact table for small df, normal limit otherwise).
double StudentT90(size_t degrees_of_freedom);

// Ordinary least squares fit y = a + b * x.  Returns {a, b, r_squared}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace odutil

#endif  // SRC_UTIL_STATS_H_
