// Fixed-width text table printer.
//
// Every bench binary regenerates one of the paper's tables or figures as a
// text table; this class keeps their formatting uniform: a header row,
// right-aligned numeric columns, and an optional title/caption.

#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace odutil {

class Table {
 public:
  explicit Table(std::string title);

  // Sets the column headers.  Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  // Adds a row of pre-formatted cells.  Must match the header width.
  void AddRow(std::vector<std::string> cells);

  // Adds a separator line between row groups.
  void AddSeparator();

  // Renders the table to the given stream (stdout by default).
  void Print(std::FILE* out = stdout) const;

  // Formatting helpers for cells.
  static std::string Num(double v, int precision = 1);
  static std::string Pct(double fraction, int precision = 0);
  // "mean (stddev)" cell, the format Figures 20-21 use.
  static std::string MeanStd(double mean, double stddev, int precision = 1);
  // "lo-hi" range cell, the format Figures 16 and 18 use.
  static std::string Range(double lo, double hi, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  // An empty row vector encodes a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace odutil

#endif  // SRC_UTIL_TABLE_H_
