#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

#include "src/util/check.h"

namespace odutil {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

void Table::AddRow(std::vector<std::string> cells) {
  OD_CHECK(!header_.empty());
  OD_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddSeparator() { rows_.emplace_back(); }

void Table::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  size_t total = 0;
  for (size_t w : widths) {
    total += w + 3;
  }

  auto print_rule = [&] {
    for (size_t i = 0; i + 1 < total; ++i) {
      std::fputc('-', out);
    }
    std::fputc('\n', out);
  };

  if (!title_.empty()) {
    std::fprintf(out, "%s\n", title_.c_str());
  }
  print_rule();
  for (size_t c = 0; c < header_.size(); ++c) {
    std::fprintf(out, "%-*s%s", static_cast<int>(widths[c]), header_[c].c_str(),
                 c + 1 < header_.size() ? " | " : "\n");
  }
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
      continue;
    }
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                   c + 1 < row.size() ? " | " : "\n");
    }
  }
  print_rule();
  std::fputc('\n', out);
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::MeanStd(double mean, double stddev, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f (%.*f)", precision, mean, precision, stddev);
  return buf;
}

std::string Table::Range(double lo, double hi, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f-%.*f", precision, lo, precision, hi);
  return buf;
}

}  // namespace odutil
