// Future energy demand prediction (Section 5.1.2).
//
// Demand = smoothed power * time remaining until the goal.  The smoothing
// half-life is a fixed fraction (10% by default, chosen by the paper's
// sensitivity analysis) of the time remaining, so the predictor is stable
// when the goal is distant and agile as it nears.

#ifndef SRC_ENERGY_PREDICTOR_H_
#define SRC_ENERGY_PREDICTOR_H_

#include "src/energy/smoothing.h"

namespace odenergy {

class DemandPredictor {
 public:
  // `half_life_fraction`: the smoothing half-life as a fraction of the time
  // remaining until the goal.
  explicit DemandPredictor(double half_life_fraction = 0.10);

  // Records a power observation covering the trailing `dt_seconds`, with
  // `remaining_seconds` left until the goal.
  void AddSample(double watts, double dt_seconds, double remaining_seconds);

  // Predicted energy demand between now and the goal, in joules.
  double PredictedDemandJoules(double remaining_seconds) const;

  double smoothed_watts() const { return smoother_.value(); }
  bool initialized() const { return smoother_.initialized(); }
  double half_life_fraction() const { return half_life_fraction_; }

  void Reset();

 private:
  double half_life_fraction_;
  ExponentialSmoother smoother_;
};

}  // namespace odenergy

#endif  // SRC_ENERGY_PREDICTOR_H_
