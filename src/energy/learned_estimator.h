// Learned-model energy estimation and the gauge-drift sentinel.
//
// LearnedEstimator glues the Sesame-style pieces together for the goal
// director: a UtilizationProbe supplies per-component activity features, an
// odpower::LearnedModel fits them against the *delivered* gauge stream
// (after TelemetryFaults corruption — the estimator must mirror what the
// controller can actually observe, never the analytic accounting), and the
// predicted power is integrated into an independent energy estimate.
//
// DriftSentinel is the cross-check.  PR 5's health validation rejects
// readings that are non-finite, negative, or implausibly large; a gauge
// whose scale drifts by 1.2x stays under every one of those bars and
// silently biases the residual estimate.  The sentinel compares the energy
// the gauge integrated over a sliding window against the energy the learned
// model predicts for the same window; sustained relative divergence beyond
// a configurable band — while the model is confident — is a drift verdict.
// Recovery is hysteretic: a streak of consecutive in-band samples must
// accumulate before the verdict lifts, mirroring the safe-mode recovery
// streak.

#ifndef SRC_ENERGY_LEARNED_ESTIMATOR_H_
#define SRC_ENERGY_LEARNED_ESTIMATOR_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/power/learned_model.h"
#include "src/power/utilization.h"
#include "src/sim/time.h"

namespace odenergy {

class LearnedEstimator {
 public:
  // Attaches a UtilizationProbe to `machine` at `now` (construct once the
  // hardware has settled; the probe's baselines are the resting states).
  LearnedEstimator(odpower::Machine* machine, odsim::SimTime now,
                   const odpower::LearnedModelConfig& config =
                       odpower::LearnedModelConfig{});

  LearnedEstimator(const LearnedEstimator&) = delete;
  LearnedEstimator& operator=(const LearnedEstimator&) = delete;

  // Consumes one delivered gauge sample.  Drains the utilization window
  // ending at `now`, predicts its power from the current fit (before
  // training — the prequential order the drift comparison needs),
  // integrates the prediction into learned_joules(), and, when `train`,
  // folds the observation into the model.  Returns the predicted watts for
  // the drained window.  The caller passes train=false while the gauge is
  // under a drift verdict or the controller is in safe mode: a model that
  // chases a drifting gauge would erase the very divergence that exposes
  // it.
  double OnSample(odsim::SimTime now, double gauge_watts, bool train);

  // Energy integrated from model predictions since construction.  Early
  // windows (before the fit converges) are integrated too; consumers that
  // need a trustworthy span difference against JoulesAtConvergence().
  double learned_joules() const { return learned_joules_; }
  // learned_joules() captured the first time the model reported
  // convergence; 0 until then.
  double joules_at_convergence() const { return joules_at_convergence_; }
  // Latched: the model converged at some point.  This — not the live
  // converged() bit — is what drift detection gates on: a drifting gauge
  // inflates the model's prediction error and revokes live convergence,
  // which is the symptom, not a reason to stand down.
  bool converged_once() const { return convergence_marked_; }
  double last_predicted_watts() const { return last_predicted_watts_; }
  // Recency-weighted *trained* seconds of the state combination the
  // machine held at the last OnSample().  Tracked per combination, not per
  // feature: a collinear fit predicts accurately on the mixes it has
  // trained on and can extrapolate wildly on a novel mix of individually
  // well-excited states.  Decayed on the model's own forgetting timescale:
  // a combination the RLS has not been refreshed on lately is one it has
  // forgotten, however long it trained on it once.
  double last_state_excitation_seconds() const {
    return last_state_excitation_seconds_;
  }

  const odpower::LearnedModel& model() const { return model_; }
  odpower::UtilizationProbe& probe() { return probe_; }

  // -- Evaluation report ------------------------------------------------------

  // Fitted coefficient vs. calibration-table truth, per feature.  Truth
  // comes from UtilizationProbe's evaluation-only table access; the
  // estimation path never reads it.
  struct CoefficientReport {
    std::string feature;
    double fitted_watts = 0.0;
    double true_watts = 0.0;
    double excitation_seconds = 0.0;
  };
  std::vector<CoefficientReport> Report() const;

  // Excitation-weighted mean relative coefficient error against the table,
  // over features excited at least `min_excitation_seconds` and whose true
  // magnitude is at least `min_true_watts` (weakly excited or near-zero
  // coefficients are not meaningfully recoverable).  Returns 1.0 when no
  // feature qualifies.
  double CoefficientRecoveryError(double min_excitation_seconds,
                                  double min_true_watts) const;

 private:
  odpower::UtilizationProbe probe_;
  odpower::LearnedModel model_;
  double learned_joules_ = 0.0;
  double joules_at_convergence_ = 0.0;
  bool convergence_marked_ = false;
  double last_predicted_watts_ = 0.0;
  // Recency-decayed trained seconds per active-state combination (bitmask
  // over features).  `trained_at` is the value of trained_seconds_total_
  // when the record was last refreshed: decay advances on the model's own
  // training clock, not wall time, because RLS forgetting only moves when
  // Observe() runs — a frozen model forgets nothing, so its excitation
  // must not rot while training is suspended.
  struct CombinationRecord {
    double seconds = 0.0;
    double trained_at = 0.0;
  };
  std::unordered_map<uint64_t, CombinationRecord> combination_seconds_;
  double trained_seconds_total_ = 0.0;
  double last_state_excitation_seconds_ = 0.0;
};

struct DriftSentinelConfig {
  bool enabled = false;
  // Sliding comparison window.  Long enough to average over workload
  // transitions, short enough that detection latency stays useful.
  double window_seconds = 20.0;
  // Relative divergence |gauge - learned| / learned tolerated before a
  // drift verdict.  The converged model tracks a healthy gauge to a few
  // percent; a 1.2x scale error diverges by ~20%.
  double divergence_band = 0.10;
  // Windows integrating less than this are too small to judge.
  double min_window_joules = 5.0;
  // A verdict requires this much *accumulated* out-of-band time, cleared
  // whenever a judgeable window comes back in band.  Kept longer than
  // window_seconds on purpose: the error lump a workload transition
  // injects (the model lags the new mix for a few samples) leaves the
  // sliding window after window_seconds and the in-band window that
  // follows zeroes the count, so only a divergence that keeps renewing
  // itself — a real scale error — reaches the hold.  Accumulation (not a
  // continuous streak) matters under churn: a gauge bad enough to also
  // trip the plausibility bars bounces the controller through safe mode,
  // and every safe-mode reset would restart a continuous clock forever.
  double entry_hold_seconds = 25.0;
  // The pre-verdict training freeze (armed at half the band) expires
  // after this much continuous suspicion.  A real drift convicts well
  // inside the budget; a workload mix the model simply has not learned
  // yet must eventually be learned — an unbounded freeze ratchets honest
  // prediction error into a false drift verdict.
  double freeze_budget_seconds = 60.0;
  // Intervals whose active-state combination the model has trained on for
  // less than this do not count as confident evidence: when the model has
  // barely seen a mix of states, its extrapolation — not the gauge — is
  // the suspect.  A gauge drift needs no state change at all to show up,
  // so gating on excitation costs detection nothing.
  double min_feature_excitation_seconds = 20.0;
  // A judgeable window needs at least this fraction of its span covered
  // by confident intervals.  The divergence verdict is computed over the
  // confident intervals *only* — an interval on a barely-trained state
  // mix indicts the model, not the gauge, so it is excluded from the
  // evidence instead of voiding the whole window: a real scale error
  // shows up identically on every mix, so the confident subset still
  // sees it, while extrapolation error lives exactly in the excluded
  // intervals.
  double min_confident_fraction = 0.5;
  // Consecutive in-band samples before a drift verdict lifts.
  int recovery_samples = 50;
  // Fraction of the gauge/learned disagreement charged back to the
  // residual estimate while drifting: 1.0 trusts the learned estimate
  // fully for the divergent energy.
  double reweight = 1.0;
};

class DriftSentinel {
 public:
  explicit DriftSentinel(const DriftSentinelConfig& config);

  // Feeds one sample interval: `gauge_joules` as integrated from the
  // delivered reading, `learned_joules` as predicted by the model, over
  // `dt_seconds` ending at `now`.  `model_confident` gates verdicts — an
  // unconverged model diverges from everything.
  void AddInterval(odsim::SimTime now, double dt_seconds, double gauge_joules,
                   double learned_joules, bool model_confident);

  // Current window divergence verdict: true when the window is judgeable
  // and out of band.
  bool Diverged() const;
  // The window spans its configured length, a quorum of it is covered by
  // confident intervals, and those intervals integrate enough energy to
  // compare.  A judgeable in-band window is positive evidence of gauge
  // health; an unjudgeable one says nothing either way.
  bool WindowJudgeable() const;
  // Signed gauge-minus-learned energy over the current window (all
  // intervals — the correction charge-back wants the whole span, since a
  // real drift biases the unconfident intervals too).
  double WindowExcessJoules() const;
  double WindowGaugeJoules() const { return window_gauge_joules_; }
  double WindowLearnedJoules() const { return window_learned_joules_; }
  // Relative divergence over the confident intervals only.
  double WindowDivergence() const;

  // Drops the window (on drift entry/exit and safe-mode entry, so a stale
  // window cannot double-charge a correction or re-trigger instantly).
  void ResetWindow();

 private:
  struct Interval {
    odsim::SimTime end;
    double seconds = 0.0;
    double gauge_joules = 0.0;
    double learned_joules = 0.0;
    bool confident = false;
  };

  const DriftSentinelConfig config_;
  std::deque<Interval> window_;
  double window_seconds_ = 0.0;
  double window_gauge_joules_ = 0.0;
  double window_learned_joules_ = 0.0;
  double confident_seconds_ = 0.0;
  double confident_gauge_joules_ = 0.0;
  double confident_learned_joules_ = 0.0;
};

}  // namespace odenergy

#endif  // SRC_ENERGY_LEARNED_ESTIMATOR_H_
