#include "src/energy/smoothing.h"

#include <cmath>

#include "src/util/check.h"

namespace odenergy {

void ExponentialSmoother::set_half_life(double seconds) {
  OD_CHECK(seconds > 0.0);
  half_life_seconds_ = seconds;
}

void ExponentialSmoother::Update(double sample, double dt_seconds) {
  OD_CHECK(dt_seconds > 0.0);
  if (!initialized_) {
    value_ = sample;
    initialized_ = true;
    return;
  }
  double alpha = std::exp2(-dt_seconds / half_life_seconds_);
  value_ = (1.0 - alpha) * sample + alpha * value_;
}

void ExponentialSmoother::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

}  // namespace odenergy
