#include "src/energy/goal_director.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/logging.h"

namespace odenergy {

GoalDirector::GoalDirector(odyssey::Viceroy* viceroy, odpower::EnergySupply* supply,
                           odscope::PowerMonitor* monitor, odsim::SimTime goal,
                           const GoalDirectorConfig& config)
    : viceroy_(viceroy),
      supply_(supply),
      monitor_(monitor),
      goal_(goal),
      config_(config),
      predictor_(config.half_life_fraction),
      hysteresis_(config.hysteresis) {
  OD_CHECK(viceroy != nullptr);
  OD_CHECK(supply != nullptr);
  OD_CHECK(monitor != nullptr);
}

void GoalDirector::Start(bool stop_sim_on_completion) {
  OD_CHECK(!running_);
  running_ = true;
  stop_sim_on_completion_ = stop_sim_on_completion;
  outcome_ = GoalOutcome::kRunning;

  monitor_->set_callback([this](odsim::SimTime now, double watts) {
    OnPowerSample(now, watts);
  });
  monitor_->Start();
  next_eval_ = viceroy_->sim()->Schedule(config_.evaluation_period,
                                         [this] { Evaluate(); });
}

void GoalDirector::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  next_eval_.Cancel();
  monitor_->Stop();
}

void GoalDirector::ExtendGoal(odsim::SimTime new_goal) {
  OD_CHECK(new_goal > viceroy_->sim()->Now());
  goal_ = new_goal;
  // The user has respecified; re-evaluate feasibility from scratch.
  infeasible_since_.reset();
  infeasibility_detected_.reset();
}

double GoalDirector::EstimatedResidualJoules() const {
  return std::max(0.0, supply_->initial_joules() - monitor_->measured_joules());
}

const std::vector<FidelityChange>& GoalDirector::FidelityLog(
    const odyssey::AdaptiveApplication* app) const {
  static const std::vector<FidelityChange> kEmpty;
  auto it = fidelity_log_.find(app);
  return it == fidelity_log_.end() ? kEmpty : it->second;
}

void GoalDirector::OnPowerSample(odsim::SimTime now, double watts) {
  double remaining = (goal_ - now).seconds();
  predictor_.AddSample(watts, monitor_->period().seconds(),
                       std::max(0.0, remaining));
}

odyssey::AdaptiveApplication* GoalDirector::PickDegradeTarget() const {
  odyssey::AdaptiveApplication* best = nullptr;
  for (odyssey::AdaptiveApplication* app : viceroy_->applications()) {
    if (app->AtLowestFidelity()) {
      continue;
    }
    if (best == nullptr || app->priority() < best->priority()) {
      best = app;
    }
  }
  return best;
}

odyssey::AdaptiveApplication* GoalDirector::PickUpgradeTarget() const {
  odyssey::AdaptiveApplication* best = nullptr;
  for (odyssey::AdaptiveApplication* app : viceroy_->applications()) {
    if (app->AtHighestFidelity()) {
      continue;
    }
    if (best == nullptr || app->priority() > best->priority()) {
      best = app;
    }
  }
  return best;
}

void GoalDirector::Evaluate() {
  if (!running_) {
    return;
  }
  odsim::SimTime now = viceroy_->sim()->Now();

  double residual_true = supply_->ResidualJoules(now);
  if (residual_true <= 0.0) {
    Complete(GoalOutcome::kExhausted);
    return;
  }
  if (now >= goal_) {
    Complete(GoalOutcome::kGoalMet);
    return;
  }

  double residual =
      EstimatedResidualJoules() * (1.0 - config_.residual_safety_fraction);
  double remaining = (goal_ - now).seconds();
  double demand = predictor_.PredictedDemandJoules(remaining);

  if (config_.record_timeline) {
    timeline_.push_back(TimelinePoint{now, residual, demand});
  }

  AdaptAction action =
      hysteresis_.Decide(demand, residual, supply_->initial_joules(), now);
  if (action == AdaptAction::kDegrade) {
    bool allowed = !has_degraded_ || now - last_degrade_ >= config_.degrade_interval;
    if (odyssey::AdaptiveApplication* app = allowed ? PickDegradeTarget() : nullptr) {
      int level = app->current_fidelity() - 1;
      viceroy_->IssueUpcall(app, level);
      fidelity_log_[app].push_back(FidelityChange{now, level});
      last_degrade_ = now;
      has_degraded_ = true;
      infeasible_since_.reset();
    } else if (PickDegradeTarget() == nullptr &&
               demand > residual * (1.0 + config_.infeasibility_deficit_fraction)) {
      // Demand materially exceeds supply with everything already at lowest
      // fidelity: the goal may be infeasible.  Alert once this has persisted
      // long enough for the smoothed estimate to reflect lowest-fidelity
      // operation (one half-life), rather than the pre-degradation transient.
      if (!infeasible_since_.has_value()) {
        infeasible_since_ = now;
      }
      double persistence = (now - *infeasible_since_).seconds();
      double required = std::max(config_.infeasibility_min_seconds,
                                 config_.half_life_fraction * remaining);
      if (persistence >= required && !infeasibility_detected_.has_value()) {
        infeasibility_detected_ = now;
        OD_LOG_WARN(
            "goal director: goal infeasible at t=%.1fs — demand %.0f J exceeds "
            "residual %.0f J at lowest fidelity",
            now.seconds(), demand, residual);
        if (infeasibility_callback_) {
          infeasibility_callback_(now, demand - residual);
        }
      }
    }
  } else if (action == AdaptAction::kUpgrade) {
    infeasible_since_.reset();
    if (odyssey::AdaptiveApplication* app = PickUpgradeTarget()) {
      int level = app->current_fidelity() + 1;
      viceroy_->IssueUpcall(app, level);
      fidelity_log_[app].push_back(FidelityChange{now, level});
      hysteresis_.NoteUpgrade(now);
    }
  } else {
    infeasible_since_.reset();
  }

  next_eval_ = viceroy_->sim()->Schedule(config_.evaluation_period,
                                         [this] { Evaluate(); });
}

void GoalDirector::Complete(GoalOutcome outcome) {
  outcome_ = outcome;
  OD_LOG_INFO("goal director: %s at t=%.1fs, residual=%.1f J",
              outcome == GoalOutcome::kGoalMet ? "goal met" : "supply exhausted",
              viceroy_->sim()->Now().seconds(),
              supply_->ResidualJoules(viceroy_->sim()->Now()));
  Stop();
  if (stop_sim_on_completion_) {
    viceroy_->sim()->Stop();
  }
}

}  // namespace odenergy
