#include "src/energy/goal_director.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/logging.h"

namespace odenergy {

GoalDirector::GoalDirector(odyssey::Viceroy* viceroy, odpower::EnergySupply* supply,
                           odscope::PowerMonitor* monitor, odsim::SimTime goal,
                           const GoalDirectorConfig& config)
    : viceroy_(viceroy),
      supply_(supply),
      monitor_(monitor),
      goal_(goal),
      config_(config),
      predictor_(config.half_life_fraction),
      hysteresis_(config.hysteresis),
      safe_clamp_(viceroy) {
  OD_CHECK(viceroy != nullptr);
  OD_CHECK(supply != nullptr);
  OD_CHECK(monitor != nullptr);
}

void GoalDirector::Start(bool stop_sim_on_completion) {
  OD_CHECK(!running_);
  running_ = true;
  stop_sim_on_completion_ = stop_sim_on_completion;
  outcome_ = GoalOutcome::kRunning;
  start_time_ = viceroy_->sim()->Now();

  monitor_->set_callback([this](odsim::SimTime now, double watts) {
    OnPowerSample(now, watts);
  });
  monitor_->Start();
  next_eval_ = viceroy_->sim()->Schedule(config_.evaluation_period,
                                         [this] { Evaluate(); });
}

void GoalDirector::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  next_eval_.Cancel();
  monitor_->Stop();
}

void GoalDirector::ExtendGoal(odsim::SimTime new_goal) {
  OD_CHECK(new_goal > viceroy_->sim()->Now());
  goal_ = new_goal;
  // The user has respecified; re-evaluate feasibility from scratch.
  infeasible_since_.reset();
  infeasibility_detected_.reset();
}

void GoalDirector::AttachLearnedEstimator(LearnedEstimator* learned) {
  OD_CHECK(!running_);
  OD_CHECK(learned != nullptr);
  learned_ = learned;
  if (config_.drift_sentinel.enabled) {
    sentinel_.emplace(config_.drift_sentinel);
  }
}

double GoalDirector::EstimatedResidualJoules() const {
  // Calibration-withheld mode: past the handoff the learned integral is the
  // consumption estimate — the gauge was only trusted long enough to
  // bootstrap the fit.
  if (learned_handoff_done_) {
    double consumed = handoff_measured_joules_ +
                      (learned_->learned_joules() - handoff_learned_joules_);
    return std::max(0.0, supply_->initial_joules() - consumed -
                             telemetry_debit_joules_);
  }
  // The drift correction backs out the energy the sentinel attributed to
  // gauge scale error: positive when the gauge over-read, so it is *added*
  // back to the residual.
  return std::max(0.0, supply_->initial_joules() - monitor_->measured_joules() -
                           telemetry_debit_joules_ + drift_correction_joules_);
}

double GoalDirector::DriftSeconds(odsim::SimTime now) const {
  double total = drift_seconds_;
  if (drifting_) {
    total += (now - drift_entered_).seconds();
  }
  return total;
}

double GoalDirector::SafeModeSeconds(odsim::SimTime now) const {
  double total = safe_mode_seconds_;
  if (health_ == ControllerHealth::kSafeMode) {
    total += (now - safe_mode_entered_).seconds();
  }
  return total;
}

const std::vector<FidelityChange>& GoalDirector::FidelityLog(
    const odyssey::AdaptiveApplication* app) const {
  static const std::vector<FidelityChange> kEmpty;
  auto it = fidelity_log_.find(app);
  return it == fidelity_log_.end() ? kEmpty : it->second;
}

void GoalDirector::LogFidelityChange(odyssey::AdaptiveApplication* app,
                                     int level, odsim::SimTime now) {
  fidelity_log_[app].push_back(FidelityChange{now, level});
}

void GoalDirector::EnterDrift(odsim::SimTime now) {
  // Retroactive correction: the divergence accumulated before the verdict
  // landed.  The window covers its own span; the entry hold accumulated
  // out-of-band time beyond it, so the overhang is charged at the
  // window's excess rate.  The accumulator is capped at the hold by
  // construction (the verdict fires the sample it crosses), so churny
  // paths cannot inflate the charge-back.
  double excess = sentinel_->WindowExcessJoules();
  if (config_.drift_sentinel.window_seconds > 0.0) {
    double overhang =
        diverged_accum_seconds_ - config_.drift_sentinel.window_seconds;
    if (overhang > 0.0) {
      excess += overhang * excess / config_.drift_sentinel.window_seconds;
    }
  }
  drifting_ = true;
  ++drift_entries_;
  drift_entered_ = now;
  drift_recovery_streak_ = 0;
  diverged_accum_seconds_ = 0.0;
  inband_accum_seconds_ = 0.0;
  suspect_since_.reset();
  if (!first_drift_detected_.has_value()) {
    first_drift_detected_ = now;
  }
  if (health_ != ControllerHealth::kSafeMode) {
    health_ = ControllerHealth::kGaugeDrift;
  }
  drift_correction_joules_ += config_.drift_sentinel.reweight * excess;
  OD_LOG_WARN(
      "goal director: gauge drift at t=%.1fs — window gauge %.1f J vs "
      "learned %.1f J (%.0f%% divergence); discounting gauge",
      now.seconds(), sentinel_->WindowGaugeJoules(),
      sentinel_->WindowLearnedJoules(), 100.0 * sentinel_->WindowDivergence());
  sentinel_->ResetWindow();
}

void GoalDirector::ExitDrift(odsim::SimTime now, const char* reason) {
  if (!drifting_) {
    return;
  }
  drifting_ = false;
  drift_seconds_ += (now - drift_entered_).seconds();
  drift_recovery_streak_ = 0;
  diverged_accum_seconds_ = 0.0;
  inband_accum_seconds_ = 0.0;
  suspect_since_.reset();
  if (health_ == ControllerHealth::kGaugeDrift) {
    health_ = ControllerHealth::kHealthy;
  }
  if (sentinel_.has_value()) {
    sentinel_->ResetWindow();
  }
  OD_LOG_INFO("goal director: gauge drift lifted at t=%.1fs (%s)",
              now.seconds(), reason);
}

void GoalDirector::EnterSafeMode(odsim::SimTime now, const char* reason) {
  // A drift verdict is subsumed: safe mode distrusts the whole feed, not
  // just its scale.
  ExitDrift(now, "superseded by safe mode");
  health_ = ControllerHealth::kSafeMode;
  ++safe_mode_entries_;
  safe_mode_entered_ = now;
  recovery_streak_ = 0;
  OD_LOG_WARN(
      "goal director: telemetry %s at t=%.1fs — safe mode: clamping to "
      "lowest fidelity, freezing goal re-planning",
      reason, now.seconds());
  safe_clamp_.Engage([this, now](odyssey::AdaptiveApplication* app,
                                 int level) {
    LogFidelityChange(app, level, now);
  });
}

void GoalDirector::ExitSafeMode(odsim::SimTime now) {
  // A drift verdict convicted from safe mode's valid samples outlives the
  // safe mode that corroborated it.
  health_ = drifting_ ? ControllerHealth::kGaugeDrift
                      : ControllerHealth::kHealthy;
  safe_mode_seconds_ += (now - safe_mode_entered_).seconds();
  consecutive_invalid_ = 0;
  identical_streak_ = 0;
  OD_LOG_INFO("goal director: telemetry recovered at t=%.1fs — safe mode off",
              now.seconds());
  safe_clamp_.Release([this, now](odyssey::AdaptiveApplication* app,
                                  int level) {
    LogFidelityChange(app, level, now);
  });
}

void GoalDirector::OnPowerSample(odsim::SimTime now, double watts) {
  double period = monitor_->period().seconds();
  bool valid = std::isfinite(watts) && watts >= 0.0 &&
               watts <= config_.max_plausible_watts;
  // Frozen-feed detection: a wedged driver repeats its last reading
  // bit-for-bit, which a noisy physical source never does.  Disabled when
  // stale_sample_limit is 0 (quantized gauges repeat legitimately).
  if (valid && config_.stale_sample_limit > 0) {
    if (has_valid_sample_ && watts == last_valid_watts_) {
      ++identical_streak_;
      if (identical_streak_ >= config_.stale_sample_limit) {
        valid = false;
      }
    } else {
      identical_streak_ = 0;
    }
  }

  if (!valid) {
    ++invalid_samples_;
    ++consecutive_invalid_;
    recovery_streak_ = 0;
    // A finite-but-rejected reading was integrated by the monitor at face
    // value; re-count that interval at the smoothed demand rate so one
    // drifting gauge cannot drag the residual estimate arbitrarily far.
    // The debit is subtracted from the estimate, so backing out an
    // over-reading means a negative contribution.
    if (std::isfinite(watts)) {
      telemetry_debit_joules_ +=
          (predictor_.smoothed_watts() - watts) * period;
      // The interval is now fully accounted (integrated by the monitor,
      // re-counted here), so the gap bridge must not cover it again.
      last_integrated_time_ = now;
    }
    if (health_ != ControllerHealth::kSafeMode) {
      if (!drifting_) {
        health_ = ControllerHealth::kSuspect;
      }
      if (consecutive_invalid_ >= config_.invalid_sample_limit) {
        EnterSafeMode(now, "invalid readings");
      }
    }
    return;  // Invalid readings never touch the predictor.
  }

  // Bridge any gap the monitor could not integrate over (dropped or NaN
  // samples) at the smoothed demand rate.  The last period before this
  // sample is covered by the monitor's own integration of it.  The gap is
  // measured from the last *integrated* sample — finite-but-rejected
  // readings were integrated (and re-counted above), so they do not leave
  // a hole.
  if (has_valid_sample_) {
    odsim::SimTime anchor = std::max(last_valid_sample_time_,
                                     last_integrated_time_);
    double gap = (now - anchor).seconds();
    if (gap > 1.5 * period) {
      telemetry_debit_joules_ +=
          predictor_.smoothed_watts() * std::max(0.0, gap - period);
      ++telemetry_gaps_;
    }
  }
  has_valid_sample_ = true;
  last_valid_sample_time_ = now;
  last_integrated_time_ = now;
  last_valid_watts_ = watts;
  consecutive_invalid_ = 0;

  // Learned-model cross-check.  The second estimator sees exactly the
  // reading the director sees — the delivered (possibly corrupted) gauge
  // value, never the analytic accounting.
  double demand_watts = watts;
  if (learned_ != nullptr) {
    // Training freezes while the gauge is under a drift verdict or the
    // controller is in safe mode: a model that chases a bad gauge would
    // erase the divergence that exposes it.  It also pauses as soon as the
    // comparison window turns merely *suspicious* (half the band) — the
    // verdict needs a window's worth of evidence, and a model that kept
    // absorbing readings during that interval would have chased part of
    // the drift before the freeze landed.  The pre-verdict freeze carries
    // a budget, though: a real drift convicts well inside it, so
    // suspicion that outlives the budget is the model lagging a workload
    // shift, and training must resume before frozen prediction error
    // ratchets into a false verdict.
    // Confidence has two legs: the model converged at some point, and the
    // state combination the machine holds is one the model has actually
    // trained on (min_feature_excitation_seconds).  A window leaning on an
    // extrapolated mix indicts the model, not the gauge — while a real
    // gauge drift needs no state change at all, so the excitation gate
    // costs detection nothing.  (The pre-OnSample read uses the previous
    // interval's excitation — a 100 ms skew on a continuous property.)
    auto excited = [this] {
      return learned_->last_state_excitation_seconds() >=
             config_.drift_sentinel.min_feature_excitation_seconds;
    };
    // Suspicion additionally requires the proven-accuracy latch: until
    // the sentinel has witnessed one judgeable in-band window, high
    // divergence means the fit is still settling, and freezing it would
    // pin that honest error in place long enough to convict it.  Like
    // the verdict itself, suspicion is excess-side only — a deficit
    // cannot convict (see the entry branch below), so freezing on one
    // would only delay the model learning a post-adaptation mix.
    if (sentinel_.has_value() && sentinel_->WindowJudgeable() &&
        !sentinel_->Diverged()) {
      sentinel_proven_ = true;
    }
    bool suspicious = learned_->converged_once() && excited() &&
                      sentinel_proven_ && sentinel_.has_value() &&
                      sentinel_->WindowExcessJoules() > 0.0 &&
                      sentinel_->WindowDivergence() >
                          0.5 * config_.drift_sentinel.divergence_band;
    if (suspicious) {
      if (!suspect_since_.has_value()) {
        suspect_since_ = now;
      }
    } else {
      suspect_since_.reset();
    }
    bool train = !drifting_ && health_ != ControllerHealth::kSafeMode;
    if (train && suspicious &&
        (now - *suspect_since_).seconds() <=
            config_.drift_sentinel.freeze_budget_seconds) {
      train = false;
    }
    double predicted = learned_->OnSample(now, watts, train);
    bool confident = learned_->converged_once() && excited();

    if (config_.learned_primary_when_converged && !learned_handoff_done_ &&
        learned_->converged_once()) {
      learned_handoff_done_ = true;
      handoff_measured_joules_ = monitor_->measured_joules();
      handoff_learned_joules_ = learned_->learned_joules();
      OD_LOG_INFO(
          "goal director: learned model converged at t=%.1fs — residual "
          "estimate handed over (gauge integral %.1f J at handoff)",
          now.seconds(), handoff_measured_joules_);
    }

    // The cross-check runs on every *valid* sample, safe mode included: a
    // gauge whose scale error also trips the plausibility bars spends the
    // whole fault bouncing through safe mode, and the valid troughs that
    // leak through are the only evidence there is.  The sentinel judges
    // the gauge, not the controller — safe mode corroborates distrust, it
    // does not stand the cross-check down.
    if (sentinel_.has_value() && !learned_handoff_done_) {
      if (drifting_) {
        // Per-sample discount: the learned model is the believed rate; the
        // gauge's excess is charged back to the residual as it accrues.
        drift_correction_joules_ +=
            config_.drift_sentinel.reweight * (watts - predicted) * period;
        demand_watts = predicted;
        // Recovery hysteresis: a streak of in-band samples (gauge agreeing
        // with the model again) lifts the verdict.
        double rel = std::abs(watts - predicted) / std::max(predicted, 1e-6);
        if (rel <= config_.drift_sentinel.divergence_band) {
          if (++drift_recovery_streak_ >=
              config_.drift_sentinel.recovery_samples) {
            ExitDrift(now, "gauge back in band");
          }
        } else {
          drift_recovery_streak_ = 0;
        }
      } else {
        sentinel_->AddInterval(now, period, watts * period, predicted * period,
                               confident);
        // Entry hysteresis: the hold's worth of out-of-band time must
        // *accumulate* — longer than the window itself — before the
        // verdict lands.  A workload-transition error lump slides out of
        // the window before the hold fills and the in-band window behind
        // it zeroes the count; only a divergence that keeps renewing (a
        // real scale error) convicts.  An unjudgeable window — safe-mode
        // resets, convergence gaps — is evidence of nothing and leaves
        // the count standing, so a gauge bad enough to bounce the
        // controller through safe mode still convicts across the gaps.
        // Only *excess*-side divergence (gauge above model) accumulates
        // toward a verdict.  The occupancy features carry no fidelity
        // term, so any fidelity drop — an adaptation decision or the safe
        // clamp — cuts real power while the model keeps predicting
        // full-fidelity watts: the gauge reads below the model and the
        // deficit indicts the feature blind spot, not the gauge.  An
        // under-reading gauge is therefore indistinguishable from normal
        // adaptation at this layer and the director does not convict on
        // it (the DriftSentinel primitive itself stays symmetric); every
        // scale error that inflates the drain estimate — the direction
        // that burns the goal — shows up on the excess side.
        bool accumulable = sentinel_->WindowExcessJoules() > 0.0;
        if (sentinel_->Diverged() && accumulable) {
          diverged_accum_seconds_ += period;
          inband_accum_seconds_ = 0.0;
          if (diverged_accum_seconds_ >=
              config_.drift_sentinel.entry_hold_seconds) {
            EnterDrift(now);
            demand_watts = predicted;
          }
        } else if (sentinel_->WindowJudgeable()) {
          diverged_accum_seconds_ = 0.0;
          inband_accum_seconds_ = 0.0;
        } else if (diverged_accum_seconds_ > 0.0) {
          // Freshness horizon: unjudgeable windows leave the count
          // standing only so long as the divergence keeps renewing within
          // a window's span of *sampled* time.  Warm-up wobble — blips
          // separated by long unjudgeable stretches — ages out; safe-mode
          // gaps contribute no samples on this path, so a churn-bounced
          // drift is unaffected.
          inband_accum_seconds_ += period;
          if (inband_accum_seconds_ >= config_.drift_sentinel.window_seconds) {
            diverged_accum_seconds_ = 0.0;
            inband_accum_seconds_ = 0.0;
          }
        }
      }
    }
  }

  double remaining = (goal_ - now).seconds();
  predictor_.AddSample(demand_watts, period, std::max(0.0, remaining));

  if (health_ == ControllerHealth::kSafeMode) {
    if (++recovery_streak_ >= config_.health_recovery_samples) {
      ExitSafeMode(now);
    }
  } else if (!drifting_) {
    health_ = identical_streak_ > 0 ? ControllerHealth::kSuspect
                                    : ControllerHealth::kHealthy;
  }
}

odyssey::AdaptiveApplication* GoalDirector::PickDegradeTarget() const {
  odyssey::AdaptiveApplication* best = nullptr;
  for (odyssey::AdaptiveApplication* app : viceroy_->applications()) {
    if (app->AtLowestFidelity()) {
      continue;
    }
    if (best == nullptr || app->priority() < best->priority()) {
      best = app;
    }
  }
  return best;
}

odyssey::AdaptiveApplication* GoalDirector::PickUpgradeTarget() const {
  odyssey::AdaptiveApplication* best = nullptr;
  for (odyssey::AdaptiveApplication* app : viceroy_->applications()) {
    if (app->AtHighestFidelity()) {
      continue;
    }
    if (best == nullptr || app->priority() > best->priority()) {
      best = app;
    }
  }
  return best;
}

void GoalDirector::Evaluate() {
  if (!running_) {
    return;
  }
  odsim::SimTime now = viceroy_->sim()->Now();

  double residual_true = supply_->ResidualJoules(now);
  if (residual_true <= 0.0) {
    Complete(GoalOutcome::kExhausted);
    return;
  }
  if (now >= goal_) {
    Complete(GoalOutcome::kGoalMet);
    return;
  }

  // Telemetry-gap watchdog: a silent feed produces no samples for
  // OnPowerSample to reject, so silence is detected here, against the
  // monitor's own sampling period.
  if (health_ != ControllerHealth::kSafeMode) {
    odsim::SimTime last_heard =
        has_valid_sample_ ? last_valid_sample_time_ : start_time_;
    double silence = (now - last_heard).seconds();
    if (silence >
        config_.telemetry_timeout_periods * monitor_->period().seconds()) {
      EnterSafeMode(now, "gap (no samples)");
    }
  }

  double residual =
      EstimatedResidualJoules() * (1.0 - config_.residual_safety_fraction);
  double remaining = (goal_ - now).seconds();
  double demand = predictor_.PredictedDemandJoules(remaining);

  if (config_.record_timeline) {
    timeline_.push_back(TimelinePoint{now, residual, demand, health_});
  }

  if (health_ == ControllerHealth::kSafeMode) {
    // Goal re-planning is frozen: fidelity is already clamped to the
    // cheapest levels, and adaptation decisions computed from corrupted
    // telemetry would be noise.  Completion checks above still run — they
    // use the true supply, not telemetry.
    infeasible_since_.reset();
    next_eval_ = viceroy_->sim()->Schedule(config_.evaluation_period,
                                           [this] { Evaluate(); });
    return;
  }

  AdaptAction action =
      hysteresis_.Decide(demand, residual, supply_->initial_joules(), now);
  if (action == AdaptAction::kDegrade) {
    bool allowed = !has_degraded_ || now - last_degrade_ >= config_.degrade_interval;
    if (odyssey::AdaptiveApplication* app = allowed ? PickDegradeTarget() : nullptr) {
      int level = app->current_fidelity() - 1;
      viceroy_->IssueUpcall(app, level);
      fidelity_log_[app].push_back(FidelityChange{now, level});
      last_degrade_ = now;
      has_degraded_ = true;
      infeasible_since_.reset();
    } else if (PickDegradeTarget() == nullptr &&
               demand > residual * (1.0 + config_.infeasibility_deficit_fraction)) {
      // Demand materially exceeds supply with everything already at lowest
      // fidelity: the goal may be infeasible.  Alert once this has persisted
      // long enough for the smoothed estimate to reflect lowest-fidelity
      // operation (one half-life), rather than the pre-degradation transient.
      if (!infeasible_since_.has_value()) {
        infeasible_since_ = now;
      }
      double persistence = (now - *infeasible_since_).seconds();
      double required = std::max(config_.infeasibility_min_seconds,
                                 config_.half_life_fraction * remaining);
      if (persistence >= required && !infeasibility_detected_.has_value()) {
        infeasibility_detected_ = now;
        OD_LOG_WARN(
            "goal director: goal infeasible at t=%.1fs — demand %.0f J exceeds "
            "residual %.0f J at lowest fidelity",
            now.seconds(), demand, residual);
        if (infeasibility_callback_) {
          infeasibility_callback_(now, demand - residual);
        }
      }
    }
  } else if (action == AdaptAction::kUpgrade) {
    infeasible_since_.reset();
    if (odyssey::AdaptiveApplication* app = PickUpgradeTarget()) {
      int level = app->current_fidelity() + 1;
      viceroy_->IssueUpcall(app, level);
      fidelity_log_[app].push_back(FidelityChange{now, level});
      hysteresis_.NoteUpgrade(now);
    }
  } else {
    infeasible_since_.reset();
  }

  next_eval_ = viceroy_->sim()->Schedule(config_.evaluation_period,
                                         [this] { Evaluate(); });
}

void GoalDirector::Complete(GoalOutcome outcome) {
  outcome_ = outcome;
  OD_LOG_INFO("goal director: %s at t=%.1fs, residual=%.1f J",
              outcome == GoalOutcome::kGoalMet ? "goal met" : "supply exhausted",
              viceroy_->sim()->Now().seconds(),
              supply_->ResidualJoules(viceroy_->sim()->Now()));
  Stop();
  if (stop_sim_on_completion_) {
    viceroy_->sim()->Stop();
  }
}

}  // namespace odenergy
