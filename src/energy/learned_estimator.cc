#include "src/energy/learned_estimator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/util/check.h"

namespace odenergy {

LearnedEstimator::LearnedEstimator(odpower::Machine* machine,
                                   odsim::SimTime now,
                                   const odpower::LearnedModelConfig& config)
    : probe_(machine, now), model_(probe_.dim(), config) {}

double LearnedEstimator::OnSample(odsim::SimTime now, double gauge_watts,
                                  bool train) {
  // Energy prediction uses the window's occupancy fractions: the model is
  // linear, so coefficients apply to time-averages of the state
  // indicators just as they do to the indicators themselves.
  double window_seconds = 0.0;
  std::vector<double> phi = probe_.DrainWindow(now, &window_seconds);
  double predicted = model_.PredictWatts(phi);
  last_predicted_watts_ = predicted;
  if (window_seconds > 0.0) {
    learned_joules_ += predicted * window_seconds;
  }
  std::vector<double> snapshot = probe_.SnapshotFeatures();
  uint64_t combination = 0;
  for (size_t i = 1; i < snapshot.size() && i < 64; ++i) {
    if (snapshot[i] > 0.5) {
      combination |= uint64_t{1} << i;
    }
  }
  CombinationRecord& record = combination_seconds_[combination];
  // Decay on twice the RLS memory (samples-to-seconds via this window),
  // measured on the model's *training* clock: combos refreshed at even a
  // modest duty cycle stay judged, combos the forgetting has flushed drop
  // back below the confidence bar — but a model whose training is frozen
  // (drift verdict, safe mode, suspicion) forgets nothing, so excitation
  // must not rot while the clock is stopped.
  if (window_seconds > 0.0 && record.seconds > 0.0) {
    double tau = 2.0 * window_seconds /
                 std::max(1e-6, 1.0 - model_.config().forgetting);
    record.seconds *=
        std::exp(-(trained_seconds_total_ - record.trained_at) / tau);
  }
  record.trained_at = trained_seconds_total_;
  if (train && std::isfinite(gauge_watts)) {
    // The gauge reading is a snapshot of machine power at the sampling
    // instant, so training pairs it with the snapshot state indicators —
    // regressing an instantaneous target on window averages attenuates
    // every coefficient for a component that switches within the window.
    model_.Observe(snapshot, gauge_watts);
    record.seconds += window_seconds;
    trained_seconds_total_ += window_seconds;
    record.trained_at = trained_seconds_total_;
  }
  last_state_excitation_seconds_ = record.seconds;
  if (!convergence_marked_ && model_.converged()) {
    convergence_marked_ = true;
    joules_at_convergence_ = learned_joules_;
  }
  return predicted;
}

std::vector<LearnedEstimator::CoefficientReport> LearnedEstimator::Report()
    const {
  std::vector<CoefficientReport> rows;
  rows.reserve(static_cast<size_t>(probe_.dim()));
  for (int i = 0; i < probe_.dim(); ++i) {
    CoefficientReport row;
    row.feature = probe_.FeatureName(i);
    row.fitted_watts = model_.coefficient(i);
    row.true_watts = probe_.TrueIncrementWatts(i);
    row.excitation_seconds = probe_.FeatureSeconds(i);
    rows.push_back(std::move(row));
  }
  return rows;
}

double LearnedEstimator::CoefficientRecoveryError(
    double min_excitation_seconds, double min_true_watts) const {
  double weighted_error = 0.0;
  double weight = 0.0;
  for (const CoefficientReport& row : Report()) {
    double magnitude = std::abs(row.true_watts);
    if (row.excitation_seconds < min_excitation_seconds ||
        magnitude < min_true_watts) {
      continue;
    }
    double w = row.excitation_seconds * magnitude;
    weighted_error +=
        w * std::abs(row.fitted_watts - row.true_watts) / magnitude;
    weight += w;
  }
  return weight > 0.0 ? weighted_error / weight : 1.0;
}

DriftSentinel::DriftSentinel(const DriftSentinelConfig& config)
    : config_(config) {
  OD_CHECK(config.window_seconds > 0.0);
  OD_CHECK(config.divergence_band > 0.0);
  OD_CHECK(config.reweight >= 0.0 && config.reweight <= 1.0);
}

void DriftSentinel::AddInterval(odsim::SimTime now, double dt_seconds,
                                double gauge_joules, double learned_joules,
                                bool model_confident) {
  if (dt_seconds <= 0.0) {
    return;
  }
  window_.push_back(Interval{now, dt_seconds, gauge_joules, learned_joules,
                             model_confident});
  window_seconds_ += dt_seconds;
  window_gauge_joules_ += gauge_joules;
  window_learned_joules_ += learned_joules;
  if (model_confident) {
    confident_seconds_ += dt_seconds;
    confident_gauge_joules_ += gauge_joules;
    confident_learned_joules_ += learned_joules;
  }
  while (!window_.empty() &&
         window_seconds_ - window_.front().seconds >= config_.window_seconds) {
    const Interval& old = window_.front();
    window_seconds_ -= old.seconds;
    window_gauge_joules_ -= old.gauge_joules;
    window_learned_joules_ -= old.learned_joules;
    if (old.confident) {
      confident_seconds_ -= old.seconds;
      confident_gauge_joules_ -= old.gauge_joules;
      confident_learned_joules_ -= old.learned_joules;
    }
    window_.pop_front();
  }
}

double DriftSentinel::WindowExcessJoules() const {
  return window_gauge_joules_ - window_learned_joules_;
}

double DriftSentinel::WindowDivergence() const {
  // Confident intervals only: extrapolation error on barely-trained state
  // mixes indicts the model, not the gauge, so it is excluded from the
  // evidence rather than folded into it.
  double reference = std::max(confident_learned_joules_, 1e-9);
  return std::abs(confident_gauge_joules_ - confident_learned_joules_) /
         reference;
}

bool DriftSentinel::WindowJudgeable() const {
  // The window spans its configured length, a quorum of it is confident,
  // and the confident intervals integrate enough energy to compare (an
  // unconverged model diverges from everything — its intervals are not
  // evidence).
  return window_seconds_ >= config_.window_seconds &&
         confident_seconds_ >=
             config_.min_confident_fraction * window_seconds_ &&
         confident_learned_joules_ >= config_.min_window_joules &&
         !window_.empty();
}

bool DriftSentinel::Diverged() const {
  return WindowJudgeable() && WindowDivergence() > config_.divergence_band;
}

void DriftSentinel::ResetWindow() {
  window_.clear();
  window_seconds_ = 0.0;
  window_gauge_joules_ = 0.0;
  window_learned_joules_ = 0.0;
  confident_seconds_ = 0.0;
  confident_gauge_joules_ = 0.0;
  confident_learned_joules_ = 0.0;
}

}  // namespace odenergy
