#include "src/energy/learned_estimator.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace odenergy {

LearnedEstimator::LearnedEstimator(odpower::Machine* machine,
                                   odsim::SimTime now,
                                   const odpower::LearnedModelConfig& config)
    : probe_(machine, now), model_(probe_.dim(), config) {}

double LearnedEstimator::OnSample(odsim::SimTime now, double gauge_watts,
                                  bool train) {
  // Energy prediction uses the window's occupancy fractions: the model is
  // linear, so coefficients apply to time-averages of the state
  // indicators just as they do to the indicators themselves.
  double window_seconds = 0.0;
  std::vector<double> phi = probe_.DrainWindow(now, &window_seconds);
  double predicted = model_.PredictWatts(phi);
  last_predicted_watts_ = predicted;
  if (window_seconds > 0.0) {
    learned_joules_ += predicted * window_seconds;
  }
  if (train && std::isfinite(gauge_watts)) {
    // The gauge reading is a snapshot of machine power at the sampling
    // instant, so training pairs it with the snapshot state indicators —
    // regressing an instantaneous target on window averages attenuates
    // every coefficient for a component that switches within the window.
    model_.Observe(probe_.SnapshotFeatures(), gauge_watts);
  }
  if (!convergence_marked_ && model_.converged()) {
    convergence_marked_ = true;
    joules_at_convergence_ = learned_joules_;
  }
  return predicted;
}

std::vector<LearnedEstimator::CoefficientReport> LearnedEstimator::Report()
    const {
  std::vector<CoefficientReport> rows;
  rows.reserve(static_cast<size_t>(probe_.dim()));
  for (int i = 0; i < probe_.dim(); ++i) {
    CoefficientReport row;
    row.feature = probe_.FeatureName(i);
    row.fitted_watts = model_.coefficient(i);
    row.true_watts = probe_.TrueIncrementWatts(i);
    row.excitation_seconds = probe_.FeatureSeconds(i);
    rows.push_back(std::move(row));
  }
  return rows;
}

double LearnedEstimator::CoefficientRecoveryError(
    double min_excitation_seconds, double min_true_watts) const {
  double weighted_error = 0.0;
  double weight = 0.0;
  for (const CoefficientReport& row : Report()) {
    double magnitude = std::abs(row.true_watts);
    if (row.excitation_seconds < min_excitation_seconds ||
        magnitude < min_true_watts) {
      continue;
    }
    double w = row.excitation_seconds * magnitude;
    weighted_error +=
        w * std::abs(row.fitted_watts - row.true_watts) / magnitude;
    weight += w;
  }
  return weight > 0.0 ? weighted_error / weight : 1.0;
}

DriftSentinel::DriftSentinel(const DriftSentinelConfig& config)
    : config_(config) {
  OD_CHECK(config.window_seconds > 0.0);
  OD_CHECK(config.divergence_band > 0.0);
  OD_CHECK(config.reweight >= 0.0 && config.reweight <= 1.0);
}

void DriftSentinel::AddInterval(odsim::SimTime now, double dt_seconds,
                                double gauge_joules, double learned_joules,
                                bool model_confident) {
  if (dt_seconds <= 0.0) {
    return;
  }
  window_.push_back(Interval{now, dt_seconds, gauge_joules, learned_joules,
                             model_confident});
  window_seconds_ += dt_seconds;
  window_gauge_joules_ += gauge_joules;
  window_learned_joules_ += learned_joules;
  if (model_confident) {
    ++confident_intervals_;
  }
  while (!window_.empty() &&
         window_seconds_ - window_.front().seconds >= config_.window_seconds) {
    const Interval& old = window_.front();
    window_seconds_ -= old.seconds;
    window_gauge_joules_ -= old.gauge_joules;
    window_learned_joules_ -= old.learned_joules;
    if (old.confident) {
      --confident_intervals_;
    }
    window_.pop_front();
  }
}

double DriftSentinel::WindowExcessJoules() const {
  return window_gauge_joules_ - window_learned_joules_;
}

double DriftSentinel::WindowDivergence() const {
  double reference = std::max(window_learned_joules_, 1e-9);
  return std::abs(window_gauge_joules_ - window_learned_joules_) / reference;
}

bool DriftSentinel::Diverged() const {
  // Judgeable: the window spans its configured length, integrates enough
  // energy to compare, and the model was confident throughout (one
  // unconverged interval in the window voids the comparison — the learned
  // side of it is garbage).
  if (window_seconds_ < config_.window_seconds ||
      window_learned_joules_ < config_.min_window_joules ||
      confident_intervals_ != static_cast<int>(window_.size()) ||
      window_.empty()) {
    return false;
  }
  return WindowDivergence() > config_.divergence_band;
}

void DriftSentinel::ResetWindow() {
  window_.clear();
  window_seconds_ = 0.0;
  window_gauge_joules_ = 0.0;
  window_learned_joules_ = 0.0;
  confident_intervals_ = 0;
}

}  // namespace odenergy
