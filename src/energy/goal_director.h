// Goal-directed energy adaptation (Section 5).
//
// The user specifies how long the battery must last.  Twice a second the
// director compares residual energy (tracked from on-line power samples
// against a known initial value) with predicted future demand (smoothed
// power times time remaining).  When demand exceeds supply it degrades the
// lowest-priority application one fidelity step; when supply exceeds demand
// by the hysteresis margin it upgrades the highest-priority application,
// at most once per 15 seconds.  The run ends when the goal is reached or
// the supply is exhausted.

#ifndef SRC_ENERGY_GOAL_DIRECTOR_H_
#define SRC_ENERGY_GOAL_DIRECTOR_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/energy/hysteresis.h"
#include "src/energy/predictor.h"
#include "src/odyssey/viceroy.h"
#include "src/power/supply.h"
#include "src/powerscope/power_monitor.h"

namespace odenergy {

struct GoalDirectorConfig {
  // How often supply and demand are compared (the paper: twice a second).
  odsim::SimDuration evaluation_period = odsim::SimDuration::Millis(500);
  // Smoothing half-life as a fraction of time remaining (Section 5.3's
  // sensitivity analysis chose 10%).
  double half_life_fraction = 0.10;
  HysteresisConfig hysteresis;
  // Minimum spacing between degradations, giving the smoothed estimate time
  // to reflect one step before taking the next.
  odsim::SimDuration degrade_interval = odsim::SimDuration::Seconds(5);
  // Safety margin on the measured residual: adaptation decisions treat the
  // supply as (1 - f) of the estimate.  Zero for the prototype's accurate
  // multimeter; a coarse gas gauge warrants a few percent.
  double residual_safety_fraction = 0.0;
  // Record a supply/demand timeline point at every evaluation (Figure 19).
  bool record_timeline = true;
  // An infeasible goal (Section 5.1.1: demand exceeds supply even with
  // every application at lowest fidelity) is reported once the state has
  // persisted for a full smoothing half-life (so the estimate reflects
  // lowest-fidelity operation, not the pre-degradation transient), but at
  // least this long — early, not at exhaustion.
  double infeasibility_min_seconds = 10.0;
  // ...and only when the deficit is material: a feasible run skirts the
  // supply/demand boundary by design, so small transients must not alert.
  double infeasibility_deficit_fraction = 0.05;
};

struct TimelinePoint {
  odsim::SimTime time;
  double residual_joules;
  double demand_joules;
};

struct FidelityChange {
  odsim::SimTime time;
  int level;
};

enum class GoalOutcome {
  kRunning,
  kGoalMet,       // The supply lasted until the specified time.
  kExhausted,     // Residual energy reached zero before the goal.
};

class GoalDirector {
 public:
  // `monitor` is any power source implementing PowerMonitor: the
  // prototype's on-line multimeter or a SmartBattery gas gauge.
  GoalDirector(odyssey::Viceroy* viceroy, odpower::EnergySupply* supply,
               odscope::PowerMonitor* monitor, odsim::SimTime goal,
               const GoalDirectorConfig& config = GoalDirectorConfig{});

  GoalDirector(const GoalDirector&) = delete;
  GoalDirector& operator=(const GoalDirector&) = delete;

  // Begins monitoring and adaptation.  Stops the simulator when the run
  // completes (goal met or supply exhausted) if `stop_sim_on_completion`.
  void Start(bool stop_sim_on_completion = true);
  void Stop();

  // Revises the goal mid-run (the user re-estimating battery needs).
  // Clears any pending infeasibility report: the user has respecified.
  void ExtendGoal(odsim::SimTime new_goal);

  // -- Infeasibility (Section 5.1.1) ----------------------------------------

  // "An infeasible duration is one so large that the available energy is
  // inadequate even if all applications run at lowest fidelity."  When the
  // director detects this it alerts the user as early as possible.
  using InfeasibilityFn = std::function<void(odsim::SimTime, double deficit_joules)>;
  void set_infeasibility_callback(InfeasibilityFn callback) {
    infeasibility_callback_ = std::move(callback);
  }

  // Time at which infeasibility was first reported, if it was.
  std::optional<odsim::SimTime> infeasibility_detected() const {
    return infeasibility_detected_;
  }

  odsim::SimTime goal() const { return goal_; }
  GoalOutcome outcome() const { return outcome_; }

  // Residual energy as the director believes it (initial minus measured).
  double EstimatedResidualJoules() const;

  // Residual energy, ground truth.
  double TrueResidualJoules(odsim::SimTime now) { return supply_->ResidualJoules(now); }

  const std::vector<TimelinePoint>& timeline() const { return timeline_; }
  const std::vector<FidelityChange>& FidelityLog(
      const odyssey::AdaptiveApplication* app) const;

  const DemandPredictor& predictor() const { return predictor_; }

 private:
  void OnPowerSample(odsim::SimTime now, double watts);
  void Evaluate();
  void Complete(GoalOutcome outcome);

  odyssey::AdaptiveApplication* PickDegradeTarget() const;
  odyssey::AdaptiveApplication* PickUpgradeTarget() const;

  odyssey::Viceroy* viceroy_;
  odpower::EnergySupply* supply_;
  odscope::PowerMonitor* monitor_;
  odsim::SimTime goal_;
  GoalDirectorConfig config_;

  DemandPredictor predictor_;
  HysteresisPolicy hysteresis_;

  bool running_ = false;
  bool stop_sim_on_completion_ = true;
  GoalOutcome outcome_ = GoalOutcome::kRunning;
  odsim::EventHandle next_eval_;
  odsim::SimTime last_degrade_ = odsim::SimTime::Zero();
  bool has_degraded_ = false;

  std::vector<TimelinePoint> timeline_;
  std::unordered_map<const odyssey::AdaptiveApplication*, std::vector<FidelityChange>>
      fidelity_log_;

  std::optional<odsim::SimTime> infeasible_since_;
  std::optional<odsim::SimTime> infeasibility_detected_;
  InfeasibilityFn infeasibility_callback_;
};

}  // namespace odenergy

#endif  // SRC_ENERGY_GOAL_DIRECTOR_H_
