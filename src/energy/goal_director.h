// Goal-directed energy adaptation (Section 5).
//
// The user specifies how long the battery must last.  Twice a second the
// director compares residual energy (tracked from on-line power samples
// against a known initial value) with predicted future demand (smoothed
// power times time remaining).  When demand exceeds supply it degrades the
// lowest-priority application one fidelity step; when supply exceeds demand
// by the hysteresis margin it upgrades the highest-priority application,
// at most once per 15 seconds.  The run ends when the goal is reached or
// the supply is exhausted.
//
// -- Controller health --------------------------------------------------
//
// The director trusts nothing about its telemetry.  Every power sample is
// validated (finite, nonnegative, physically plausible) before it may
// touch the demand predictor or the residual estimate, and the director
// watches for the feed going silent or freezing.  Sustained corruption
// trips a safe mode: every application is clamped to its cheapest
// fidelity (the energy-conserving choice when consumption cannot be
// observed) and goal re-planning freezes, since decisions made on garbage
// telemetry are worse than no decisions.  Safe mode lifts — restoring the
// pre-clamp fidelities — only after a streak of consecutive valid
// samples, mirroring the viceroy's link-outage recovery hysteresis.
// Energy the monitor failed to integrate during a gap is bridged at the
// smoothed demand rate, and energy it integrated from implausible
// readings is re-counted at that rate, so the residual estimate survives
// telemetry faults with bounded error.

#ifndef SRC_ENERGY_GOAL_DIRECTOR_H_
#define SRC_ENERGY_GOAL_DIRECTOR_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/energy/hysteresis.h"
#include "src/energy/learned_estimator.h"
#include "src/energy/predictor.h"
#include "src/odyssey/viceroy.h"
#include "src/power/supply.h"
#include "src/powerscope/power_monitor.h"

namespace odenergy {

struct GoalDirectorConfig {
  // How often supply and demand are compared (the paper: twice a second).
  odsim::SimDuration evaluation_period = odsim::SimDuration::Millis(500);
  // Smoothing half-life as a fraction of time remaining (Section 5.3's
  // sensitivity analysis chose 10%).
  double half_life_fraction = 0.10;
  HysteresisConfig hysteresis;
  // Minimum spacing between degradations, giving the smoothed estimate time
  // to reflect one step before taking the next.
  odsim::SimDuration degrade_interval = odsim::SimDuration::Seconds(5);
  // Safety margin on the measured residual: adaptation decisions treat the
  // supply as (1 - f) of the estimate.  Zero for the prototype's accurate
  // multimeter; a coarse gas gauge warrants a few percent.
  double residual_safety_fraction = 0.0;
  // Record a supply/demand timeline point at every evaluation (Figure 19).
  bool record_timeline = true;
  // An infeasible goal (Section 5.1.1: demand exceeds supply even with
  // every application at lowest fidelity) is reported once the state has
  // persisted for a full smoothing half-life (so the estimate reflects
  // lowest-fidelity operation, not the pre-degradation transient), but at
  // least this long — early, not at exhaustion.
  double infeasibility_min_seconds = 10.0;
  // ...and only when the deficit is material: a feasible run skirts the
  // supply/demand boundary by design, so small transients must not alert.
  double infeasibility_deficit_fraction = 0.05;

  // -- Controller health (telemetry-fault tolerance) -------------------------

  // A power reading is invalid when non-finite, negative, or above this
  // bound; no state of the modeled hardware draws anywhere near it, so a
  // larger value can only be a telemetry fault (e.g. gauge drift).
  double max_plausible_watts = 15.0;
  // Consecutive invalid readings that trip safe mode.
  int invalid_sample_limit = 3;
  // A telemetry gap — no valid sample for this many sampling periods —
  // trips safe mode at the next evaluation.
  double telemetry_timeout_periods = 4.0;
  // Consecutive bit-identical readings before the feed is declared frozen
  // (a wedged driver repeating its last value).  0 disables: quantized
  // gauges such as SmartBattery repeat readings legitimately, so only
  // enable this for a noisy continuous source like the multimeter.
  int stale_sample_limit = 0;
  // Consecutive valid readings before safe mode lifts (recovery
  // hysteresis, mirroring the viceroy's link-outage clamp).
  int health_recovery_samples = 8;

  // -- Learned-model cross-check (drift sentinel) -----------------------------

  // Configuration for the gauge-drift sentinel.  Only consulted when a
  // LearnedEstimator is attached and `drift_sentinel.enabled`; the default
  // (disabled) leaves every existing behavior — and every golden —
  // untouched.
  DriftSentinelConfig drift_sentinel;
  // Calibration-withheld operation: once the learned model converges, hand
  // the residual estimate over to it (consumed energy past the handoff is
  // the learned integral, not the gauge integral).  For hardware whose
  // gauge is too coarse to integrate well — or whose calibration table was
  // never measured.
  bool learned_primary_when_converged = false;
};

// Health of the telemetry feed as judged by the director: kSuspect while a
// below-threshold streak of invalid/frozen readings is in progress,
// kSafeMode once corruption tripped the fallback policy, kGaugeDrift while
// the learned-model sentinel holds a drift verdict against the gauge (the
// readings are individually plausible — the *scale* is wrong — so the
// controller keeps adapting, on the discounted residual).
enum class ControllerHealth {
  kHealthy,
  kSuspect,
  kSafeMode,
  kGaugeDrift,
};

struct TimelinePoint {
  odsim::SimTime time;
  double residual_joules;
  double demand_joules;
  ControllerHealth health = ControllerHealth::kHealthy;
};

struct FidelityChange {
  odsim::SimTime time;
  int level;
};

enum class GoalOutcome {
  kRunning,
  kGoalMet,       // The supply lasted until the specified time.
  kExhausted,     // Residual energy reached zero before the goal.
};

class GoalDirector {
 public:
  // `monitor` is any power source implementing PowerMonitor: the
  // prototype's on-line multimeter or a SmartBattery gas gauge.
  GoalDirector(odyssey::Viceroy* viceroy, odpower::EnergySupply* supply,
               odscope::PowerMonitor* monitor, odsim::SimTime goal,
               const GoalDirectorConfig& config = GoalDirectorConfig{});

  GoalDirector(const GoalDirector&) = delete;
  GoalDirector& operator=(const GoalDirector&) = delete;

  // Begins monitoring and adaptation.  Stops the simulator when the run
  // completes (goal met or supply exhausted) if `stop_sim_on_completion`.
  void Start(bool stop_sim_on_completion = true);
  void Stop();

  // Revises the goal mid-run (the user re-estimating battery needs).
  // Clears any pending infeasibility report: the user has respecified.
  void ExtendGoal(odsim::SimTime new_goal);

  // -- Infeasibility (Section 5.1.1) ----------------------------------------

  // "An infeasible duration is one so large that the available energy is
  // inadequate even if all applications run at lowest fidelity."  When the
  // director detects this it alerts the user as early as possible.
  using InfeasibilityFn = std::function<void(odsim::SimTime, double deficit_joules)>;
  void set_infeasibility_callback(InfeasibilityFn callback) {
    infeasibility_callback_ = std::move(callback);
  }

  // Time at which infeasibility was first reported, if it was.
  std::optional<odsim::SimTime> infeasibility_detected() const {
    return infeasibility_detected_;
  }

  odsim::SimTime goal() const { return goal_; }
  GoalOutcome outcome() const { return outcome_; }

  // -- Controller health ----------------------------------------------------

  ControllerHealth health() const { return health_; }
  // Distinct safe-mode episodes so far.
  int safe_mode_entries() const { return safe_mode_entries_; }
  // Cumulative time spent in safe mode up to `now` (open episode included).
  double SafeModeSeconds(odsim::SimTime now) const;
  // Readings rejected as invalid (non-finite, negative, implausible, or
  // frozen past the stale limit).
  int invalid_samples() const { return invalid_samples_; }
  // Telemetry gaps bridged (distinct spans with no valid sample).
  int telemetry_gaps() const { return telemetry_gaps_; }
  // Net correction applied to the residual estimate for energy the monitor
  // missed (gaps, positive debit) or miscounted (implausible readings,
  // either sign).
  double telemetry_debit_joules() const { return telemetry_debit_joules_; }

  // -- Learned-model cross-check --------------------------------------------

  // Attaches the second estimator (and, when config.drift_sentinel.enabled,
  // arms the sentinel).  Must be called before Start(); the estimator must
  // outlive the director.
  void AttachLearnedEstimator(LearnedEstimator* learned);
  const LearnedEstimator* learned_estimator() const { return learned_; }

  // Distinct drift episodes declared by the sentinel.
  int drift_entries() const { return drift_entries_; }
  // Cumulative time under a drift verdict up to `now` (open episode
  // included).
  double DriftSeconds(odsim::SimTime now) const;
  // Energy charged back to the residual estimate for gauge/learned
  // disagreement while drifting (positive when the gauge over-reads).
  double drift_correction_joules() const { return drift_correction_joules_; }
  // Time the sentinel first declared drift, if it ever did.
  std::optional<odsim::SimTime> first_drift_detected() const {
    return first_drift_detected_;
  }
  // Whether the calibration-withheld handoff happened: the learned model is
  // now the primary residual estimator (learned_primary_when_converged).
  bool learned_primary_active() const { return learned_handoff_done_; }

  // Residual energy as the director believes it: initial minus measured,
  // corrected by the telemetry debit.
  double EstimatedResidualJoules() const;

  // Residual energy, ground truth.
  double TrueResidualJoules(odsim::SimTime now) { return supply_->ResidualJoules(now); }

  const std::vector<TimelinePoint>& timeline() const { return timeline_; }
  const std::vector<FidelityChange>& FidelityLog(
      const odyssey::AdaptiveApplication* app) const;

  const DemandPredictor& predictor() const { return predictor_; }

 private:
  void OnPowerSample(odsim::SimTime now, double watts);
  void Evaluate();
  void Complete(GoalOutcome outcome);
  void EnterSafeMode(odsim::SimTime now, const char* reason);
  void ExitSafeMode(odsim::SimTime now);
  void EnterDrift(odsim::SimTime now);
  void ExitDrift(odsim::SimTime now, const char* reason);
  void LogFidelityChange(odyssey::AdaptiveApplication* app, int level,
                         odsim::SimTime now);

  odyssey::AdaptiveApplication* PickDegradeTarget() const;
  odyssey::AdaptiveApplication* PickUpgradeTarget() const;

  odyssey::Viceroy* viceroy_;
  odpower::EnergySupply* supply_;
  odscope::PowerMonitor* monitor_;
  odsim::SimTime goal_;
  GoalDirectorConfig config_;

  DemandPredictor predictor_;
  HysteresisPolicy hysteresis_;

  bool running_ = false;
  bool stop_sim_on_completion_ = true;
  GoalOutcome outcome_ = GoalOutcome::kRunning;
  odsim::EventHandle next_eval_;
  odsim::SimTime last_degrade_ = odsim::SimTime::Zero();
  bool has_degraded_ = false;

  // Controller health state machine.
  ControllerHealth health_ = ControllerHealth::kHealthy;
  odyssey::FidelityClamp safe_clamp_;
  odsim::SimTime start_time_ = odsim::SimTime::Zero();
  odsim::SimTime last_valid_sample_time_ = odsim::SimTime::Zero();
  // Last sample the monitor integrated, valid or not: finite rejected
  // readings are integrated then re-counted, so the gap bridge must not
  // cover them again.
  odsim::SimTime last_integrated_time_ = odsim::SimTime::Zero();
  double last_valid_watts_ = 0.0;
  bool has_valid_sample_ = false;
  int consecutive_invalid_ = 0;
  int identical_streak_ = 0;
  int recovery_streak_ = 0;
  int invalid_samples_ = 0;
  int telemetry_gaps_ = 0;
  int safe_mode_entries_ = 0;
  double safe_mode_seconds_ = 0.0;
  odsim::SimTime safe_mode_entered_ = odsim::SimTime::Zero();
  double telemetry_debit_joules_ = 0.0;

  // Learned-model cross-check state.
  LearnedEstimator* learned_ = nullptr;
  std::optional<DriftSentinel> sentinel_;
  bool drifting_ = false;
  // When the comparison window first turned suspicious (past half the
  // band, continuously).  Unset whenever the window is back under the
  // threshold.
  std::optional<odsim::SimTime> suspect_since_;
  // Latched once the sentinel has seen a judgeable *in-band* window: the
  // model has demonstrated it can match a healthy gauge.  Until then,
  // suspicion must not freeze training — freezing a still-converging fit
  // pins its honest error in place and ratchets it into a false verdict.
  bool sentinel_proven_ = false;
  // Accumulated seconds the window has spent out of band (past the full
  // band) since the last judgeable in-band window.  Survives safe-mode
  // churn on purpose: an implausible gauge corroborates drift, and the
  // window resets it forces would otherwise restart a continuous entry
  // clock forever.
  double diverged_accum_seconds_ = 0.0;
  // Sampled (non-safe-mode) seconds since the last out-of-band window;
  // ages the accumulator out when divergence stops renewing.
  double inband_accum_seconds_ = 0.0;
  int drift_entries_ = 0;
  int drift_recovery_streak_ = 0;
  double drift_seconds_ = 0.0;
  odsim::SimTime drift_entered_ = odsim::SimTime::Zero();
  double drift_correction_joules_ = 0.0;
  std::optional<odsim::SimTime> first_drift_detected_;
  // Calibration-withheld handoff: gauge-integrated consumption at the
  // moment the learned model became primary, and the learned integral then.
  bool learned_handoff_done_ = false;
  double handoff_measured_joules_ = 0.0;
  double handoff_learned_joules_ = 0.0;

  std::vector<TimelinePoint> timeline_;
  std::unordered_map<const odyssey::AdaptiveApplication*, std::vector<FidelityChange>>
      fidelity_log_;

  std::optional<odsim::SimTime> infeasible_since_;
  std::optional<odsim::SimTime> infeasibility_detected_;
  InfeasibilityFn infeasibility_callback_;
};

}  // namespace odenergy

#endif  // SRC_ENERGY_GOAL_DIRECTOR_H_
