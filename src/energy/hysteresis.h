// Adaptation hysteresis (Section 5.1.3).
//
// Applications degrade as soon as predicted demand exceeds residual energy.
// Upgrades require supply to exceed demand by a margin that is the sum of a
// variable component (5% of residual energy — bias toward stability when
// energy is plentiful) and a constant component (1% of the initial energy —
// bias against improvement when residual energy is low), and are capped at
// one improvement per 15 seconds.

#ifndef SRC_ENERGY_HYSTERESIS_H_
#define SRC_ENERGY_HYSTERESIS_H_

#include "src/sim/time.h"

namespace odenergy {

struct HysteresisConfig {
  // Variable margin: fraction of residual energy.
  double variable_fraction = 0.05;
  // Constant margin: fraction of the initial energy supply.
  double constant_fraction = 0.01;
  // Minimum spacing between fidelity improvements.
  odsim::SimDuration upgrade_interval = odsim::SimDuration::Seconds(15);
};

enum class AdaptAction {
  kNone,
  kDegrade,
  kUpgrade,
};

class HysteresisPolicy {
 public:
  explicit HysteresisPolicy(const HysteresisConfig& config = HysteresisConfig{});

  // Decides the action given predicted demand, residual energy, and the
  // initial supply, at time `now`.
  AdaptAction Decide(double demand_joules, double residual_joules,
                     double initial_joules, odsim::SimTime now);

  // Must be called when an upgrade is actually issued, to restart the cap.
  void NoteUpgrade(odsim::SimTime now);

  double UpgradeMarginJoules(double residual_joules, double initial_joules) const;

  const HysteresisConfig& config() const { return config_; }

 private:
  HysteresisConfig config_;
  odsim::SimTime last_upgrade_ = odsim::SimTime::Zero();
  bool has_upgraded_ = false;
};

}  // namespace odenergy

#endif  // SRC_ENERGY_HYSTERESIS_H_
