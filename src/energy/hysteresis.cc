#include "src/energy/hysteresis.h"

#include "src/util/check.h"

namespace odenergy {

HysteresisPolicy::HysteresisPolicy(const HysteresisConfig& config) : config_(config) {
  OD_CHECK(config.variable_fraction >= 0.0);
  OD_CHECK(config.constant_fraction >= 0.0);
}

double HysteresisPolicy::UpgradeMarginJoules(double residual_joules,
                                             double initial_joules) const {
  return config_.variable_fraction * residual_joules +
         config_.constant_fraction * initial_joules;
}

AdaptAction HysteresisPolicy::Decide(double demand_joules, double residual_joules,
                                     double initial_joules, odsim::SimTime now) {
  if (demand_joules > residual_joules) {
    return AdaptAction::kDegrade;
  }
  double margin = UpgradeMarginJoules(residual_joules, initial_joules);
  if (residual_joules - demand_joules > margin) {
    if (!has_upgraded_ || now - last_upgrade_ >= config_.upgrade_interval) {
      return AdaptAction::kUpgrade;
    }
  }
  return AdaptAction::kNone;
}

void HysteresisPolicy::NoteUpgrade(odsim::SimTime now) {
  last_upgrade_ = now;
  has_upgraded_ = true;
}

}  // namespace odenergy
