#include "src/energy/predictor.h"

#include <algorithm>

#include "src/util/check.h"

namespace odenergy {

namespace {
// Below this remaining time the half-life is pinned so that smoothing never
// degenerates to following raw samples exactly.
constexpr double kMinHalfLifeSeconds = 1.0;
}  // namespace

DemandPredictor::DemandPredictor(double half_life_fraction)
    : half_life_fraction_(half_life_fraction) {
  OD_CHECK(half_life_fraction > 0.0 && half_life_fraction <= 1.0);
}

void DemandPredictor::AddSample(double watts, double dt_seconds,
                                double remaining_seconds) {
  double half_life =
      std::max(kMinHalfLifeSeconds, half_life_fraction_ * remaining_seconds);
  smoother_.set_half_life(half_life);
  smoother_.Update(watts, dt_seconds);
}

double DemandPredictor::PredictedDemandJoules(double remaining_seconds) const {
  if (remaining_seconds <= 0.0) {
    return 0.0;
  }
  return smoother_.value() * remaining_seconds;
}

void DemandPredictor::Reset() { smoother_.Reset(); }

}  // namespace odenergy
