// Exponential smoothing with a half-life parameter (Section 5.1.2).
//
// Odyssey predicts future energy demand from smoothed observations of past
// power usage: new = (1 - alpha) * sample + alpha * old.  Rather than fixing
// alpha, the half-life form sets alpha per sample so that an old estimate's
// weight halves after `half_life` seconds regardless of sampling period:
// alpha = 2^(-dt / half_life).  The goal director varies the half-life as
// the goal approaches (agility near the goal, stability far from it).

#ifndef SRC_ENERGY_SMOOTHING_H_
#define SRC_ENERGY_SMOOTHING_H_

namespace odenergy {

class ExponentialSmoother {
 public:
  ExponentialSmoother() = default;

  // Sets the half-life, in seconds, applied to subsequent updates.
  void set_half_life(double seconds);
  double half_life() const { return half_life_seconds_; }

  // Folds in a sample observed over the trailing `dt_seconds`.
  // The first sample initializes the estimate directly.
  void Update(double sample, double dt_seconds);

  double value() const { return value_; }
  bool initialized() const { return initialized_; }

  void Reset();

 private:
  double half_life_seconds_ = 1.0;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace odenergy

#endif  // SRC_ENERGY_SMOOTHING_H_
