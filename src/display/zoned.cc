#include "src/display/zoned.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/check.h"

namespace oddisplay {

ZoneLayout::ZoneLayout(int cols, int rows) : cols_(cols), rows_(rows) {
  OD_CHECK(cols >= 1);
  OD_CHECK(rows >= 1);
}

Rect ZoneLayout::ZoneRect(int index) const {
  OD_CHECK(index >= 0 && index < zone_count());
  int col = index % cols_;
  int row = index / cols_;
  double w = 1.0 / cols_;
  double h = 1.0 / rows_;
  return Rect{col * w, row * h, w, h};
}

int ZoneLayout::LitZoneCount(const std::vector<Rect>& windows) const {
  int lit = 0;
  for (int i = 0; i < zone_count(); ++i) {
    Rect zone = ZoneRect(i);
    for (const Rect& window : windows) {
      if (!window.empty() && zone.Intersects(window)) {
        ++lit;
        break;
      }
    }
  }
  return lit;
}

double ZoneLayout::LitFraction(const std::vector<Rect>& windows) const {
  return static_cast<double>(LitZoneCount(windows)) /
         static_cast<double>(zone_count());
}

Rect SnapToZones(const Rect& window, const ZoneLayout& layout) {
  Rect snapped = window;
  snapped.w = std::min(snapped.w, 1.0);
  snapped.h = std::min(snapped.h, 1.0);

  auto snap_axis = [](double size, double pos, int cells) {
    double cell = 1.0 / cells;
    // Zones the window must span given its size; align its start to the
    // zone boundary that keeps it inside the screen and minimizes overlap.
    int needed = static_cast<int>(std::ceil(size / cell - 1e-9));
    double lo = 0.0;
    double best = pos;
    double best_distance = 2.0;
    for (int start = 0; start + needed <= cells; ++start) {
      lo = start * cell;
      double hi = (start + needed) * cell - size;
      double candidate = std::clamp(pos, lo, hi);
      double distance = std::abs(candidate - pos);
      if (distance < best_distance) {
        best_distance = distance;
        best = candidate;
      }
    }
    return best;
  };

  snapped.x = snap_axis(snapped.w, snapped.x, layout.cols());
  snapped.y = snap_axis(snapped.h, snapped.y, layout.rows());
  return snapped;
}

ZonedBacklightController::ZonedBacklightController(odpower::Display* display,
                                                   const ZoneLayout& layout)
    : display_(display), layout_(layout) {
  OD_CHECK(display != nullptr);
}

void ZonedBacklightController::SetWindows(std::vector<Rect> windows) {
  windows_ = std::move(windows);
  lit_zones_ = layout_.LitZoneCount(windows_);
  display_->SetZonedLitFraction(layout_.LitFraction(windows_));
}

void ZonedBacklightController::Disable() {
  lit_zones_ = 0;
  display_->ClearZoning();
}

}  // namespace oddisplay
