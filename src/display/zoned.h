// Zoned backlighting (Section 4).
//
// A zoned display divides the backlight into a grid of independently
// controlled zones (Figure 17 shows the 4-zone 2x2 and 8-zone 4x2 layouts).
// Zones intersecting a visible window are lit bright; the rest are dark.
// Each zone's draw is proportional to its area, so the effective display
// power is bright * lit_fraction, which the controller pushes into the
// Display component.

#ifndef SRC_DISPLAY_ZONED_H_
#define SRC_DISPLAY_ZONED_H_

#include <vector>

#include "src/display/geometry.h"
#include "src/power/display.h"

namespace oddisplay {

class ZoneLayout {
 public:
  ZoneLayout(int cols, int rows);

  // The paper's two candidate designs.
  static ZoneLayout FourZone() { return ZoneLayout(2, 2); }
  static ZoneLayout EightZone() { return ZoneLayout(4, 2); }

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  int zone_count() const { return cols_ * rows_; }

  Rect ZoneRect(int index) const;

  // Number of zones intersecting at least one window.
  int LitZoneCount(const std::vector<Rect>& windows) const;

  double LitFraction(const std::vector<Rect>& windows) const;

 private:
  int cols_;
  int rows_;
};

// The "snap-to" feature the paper envisions for window managers: moves a
// window (preserving its size) so that it straddles the fewest possible
// zones, returning the adjusted rectangle.  Windows larger than the screen
// are clamped to it.
Rect SnapToZones(const Rect& window, const ZoneLayout& layout);

// Drives a Display component from the set of visible windows.
class ZonedBacklightController {
 public:
  ZonedBacklightController(odpower::Display* display, const ZoneLayout& layout);

  // Replaces the visible window set and reapplies zoning.
  void SetWindows(std::vector<Rect> windows);

  // Stops zoning; the display reverts to conventional full-bright behaviour.
  void Disable();

  int lit_zones() const { return lit_zones_; }
  const ZoneLayout& layout() const { return layout_; }

 private:
  odpower::Display* display_;
  ZoneLayout layout_;
  std::vector<Rect> windows_;
  int lit_zones_ = 0;
};

}  // namespace oddisplay

#endif  // SRC_DISPLAY_ZONED_H_
