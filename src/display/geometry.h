// Screen geometry for zoned backlighting.
//
// Windows and zones are axis-aligned rectangles in normalized screen
// coordinates: (0,0) is the top-left corner and the full screen is the unit
// square.

#ifndef SRC_DISPLAY_GEOMETRY_H_
#define SRC_DISPLAY_GEOMETRY_H_

namespace oddisplay {

struct Rect {
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;

  bool empty() const { return w <= 0.0 || h <= 0.0; }

  // True if the interiors overlap (shared edges do not count, so a window
  // that exactly abuts a zone boundary does not light the neighbouring
  // zone — the "snap-to" placement the paper envisions).
  bool Intersects(const Rect& other) const {
    return x < other.x + other.w && other.x < x + w && y < other.y + other.h &&
           other.y < y + h;
  }

  static Rect FullScreen() { return Rect{0.0, 0.0, 1.0, 1.0}; }
};

}  // namespace oddisplay

#endif  // SRC_DISPLAY_GEOMETRY_H_
