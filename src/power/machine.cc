#include "src/power/machine.h"

#include <utility>

#include "src/util/check.h"

namespace odpower {

Machine::Machine(odsim::Simulator* sim, double synergy_watts_per_extra_active)
    : sim_(sim), synergy_watts_(synergy_watts_per_extra_active) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(synergy_watts_ >= 0.0);
}

void Machine::Attach(std::unique_ptr<Component> component) {
  OD_CHECK(component != nullptr);
  OD_CHECK(component->machine_ == nullptr);
  component->machine_ = this;
  components_.push_back(std::move(component));
  OnComponentPowerChanged();
}

double Machine::SynergyPower() const {
  int active = 0;
  for (const auto& c : components_) {
    if (c->active()) {
      ++active;
    }
  }
  return active > 1 ? synergy_watts_ * static_cast<double>(active - 1) : 0.0;
}

double Machine::TotalPower() const {
  if (total_dirty_) {
    double sum = 0.0;
    for (const auto& c : components_) {
      sum += c->power();
    }
    cached_total_watts_ = sum + SynergyPower();
    total_dirty_ = false;
  }
  return cached_total_watts_;
}

Component* Machine::FindComponent(const std::string& name) {
  for (const auto& c : components_) {
    if (c->name() == name) {
      return c.get();
    }
  }
  return nullptr;
}

void Machine::AddObserver(MachineObserver* observer) {
  OD_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

void Machine::OnComponentPowerChanged() {
  // Invalidate before notifying: observers commonly read TotalPower().
  total_dirty_ = true;
  for (MachineObserver* observer : observers_) {
    observer->OnMachinePowerChanged(sim_->Now());
  }
}

}  // namespace odpower
