// Hardware power manager.
//
// Implements the hardware power-management techniques of Section 3.1:
//   - disk enters standby after 10 s of inactivity (spin-up on next access);
//   - the wireless interface rests in standby, waking only for RPCs and
//     bulk transfers (the paper's modified network package);
//   - the display is set by applications (off during speech, bright while
//     video/maps/web are visible).
// With power management disabled (the paper's "Baseline" bars) the disk and
// interface rest in their idle states instead.

#ifndef SRC_POWER_POWER_MANAGER_H_
#define SRC_POWER_POWER_MANAGER_H_

#include <deque>

#include "src/power/disk.h"
#include "src/power/display.h"
#include "src/power/wavelan.h"
#include "src/sim/simulator.h"

namespace odpower {

class PowerManager {
 public:
  PowerManager(odsim::Simulator* sim, Display* display, WaveLan* wavelan, Disk* disk);

  PowerManager(const PowerManager&) = delete;
  PowerManager& operator=(const PowerManager&) = delete;

  // Enables/disables hardware power management.  Takes effect immediately:
  // resting devices move to the new resting state.
  void SetHardwarePmEnabled(bool enabled);
  bool hardware_pm_enabled() const { return hw_pm_enabled_; }

  // How long the disk must be inactive before spinning down (default 10 s).
  void set_disk_standby_timeout(odsim::SimDuration timeout);

  // Multiplies the transfer duration of disk accesses performed while set
  // (fault injection: a degraded spindle or bus contention spike).  Applies
  // when an access starts, so queued requests feel a spike that begins
  // while they wait.
  void set_disk_latency_scale(double scale);
  double disk_latency_scale() const { return disk_latency_scale_; }

  // -- Disk ------------------------------------------------------------------

  // Performs a disk access of the given transfer duration, spinning up first
  // if necessary.  Concurrent requests queue FIFO.  `on_done` fires when the
  // access completes.
  void AccessDisk(odsim::SimDuration duration, odsim::EventFn on_done);

  int queued_disk_accesses() const {
    return static_cast<int>(disk_queue_.size()) + (disk_busy_ ? 1 : 0);
  }

  // -- Network ---------------------------------------------------------------

  // The link layer brackets every RPC/bulk transfer with these.  Nested
  // Begin/End pairs are counted.  Between uses, the interface rests in
  // standby (PM on) or idle (PM off).
  void BeginNetworkUse();
  void EndNetworkUse();
  bool network_in_use() const { return network_use_count_ > 0; }

  // -- Display ---------------------------------------------------------------

  void SetDisplay(DisplayState state) { display_->Set(state); }
  Display* display() { return display_; }
  WaveLan* wavelan() { return wavelan_; }
  Disk* disk() { return disk_; }

 private:
  WaveLanState NetworkRestingState() const;
  DiskState DiskRestingState() const;
  void ArmDiskTimer();
  void RestNetwork();

  odsim::Simulator* sim_;
  Display* display_;
  WaveLan* wavelan_;
  Disk* disk_;

  bool hw_pm_enabled_ = false;
  odsim::SimDuration disk_standby_timeout_ = odsim::SimDuration::Seconds(10);
  double disk_latency_scale_ = 1.0;
  odsim::EventHandle disk_timer_;
  bool disk_busy_ = false;
  struct DiskRequest {
    odsim::SimDuration duration;
    odsim::EventFn on_done;
  };
  std::deque<DiskRequest> disk_queue_;
  int network_use_count_ = 0;
};

}  // namespace odpower

#endif  // SRC_POWER_POWER_MANAGER_H_
