// Per-component utilization features for the self-constructive power model.
//
// Sesame-style online model construction regresses the battery interface
// against *component activity*, not against any calibrated power table.  The
// UtilizationProbe supplies the activity side: it observes a Machine and
// integrates, per component, the time spent in each discrete state (CPU
// busy/halt slices, WaveLAN transmit/receive/idle/standby, disk and display
// modes).  A window drain converts the residency into the regression
// feature vector
//
//   phi = [ 1, occ(c0,s1), occ(c0,s2), ..., occ(cN,sK) ]
//
// where each occupancy is the fraction of the window the component spent in
// that state, every component's *baseline* state (its state when the probe
// was constructed — the machine's resting state in practice) is omitted,
// and the leading 1 is the intercept.  Omitting one state per component is
// what makes the regression identifiable: per-component occupancies sum to
// one, so a full one-hot encoding is rank-deficient and any constant could
// slosh between components.  With the baseline folded into the intercept,
// the learned coefficients are power *increments over resting* and the
// intercept is the resting (background) draw.
//
// The probe reads only which state each component is in — never
// Component::power(), never the accounting — so the feature stream carries
// no calibrated wattage.  TrueIncrementWatts()/TrueInterceptWatts() DO read
// the state table, but exist solely for evaluation (coefficient-recovery
// error in tests and the learned_model_sweep experiment); the estimation
// path must not call them.

#ifndef SRC_POWER_UTILIZATION_H_
#define SRC_POWER_UTILIZATION_H_

#include <string>
#include <vector>

#include "src/power/machine.h"
#include "src/sim/time.h"

namespace odpower {

class UtilizationProbe final : public MachineObserver {
 public:
  // Attaches to `machine` (must outlive the probe) and opens the first
  // window at `now`.  Component baselines are the states held at this
  // moment, so construct the probe once the hardware has settled.
  UtilizationProbe(Machine* machine, odsim::SimTime now);

  UtilizationProbe(const UtilizationProbe&) = delete;
  UtilizationProbe& operator=(const UtilizationProbe&) = delete;

  // Feature-vector length: 1 (intercept) + one slot per non-baseline
  // component state.
  int dim() const { return static_cast<int>(features_.size()) + 1; }

  // Closes the window at `now` and returns its feature vector (intercept
  // first, occupancies as fractions of the window).  `window_seconds`
  // receives the window length.  A zero-length window returns the intercept
  // with zero occupancies.
  std::vector<double> DrainWindow(odsim::SimTime now, double* window_seconds);

  // The instantaneous feature vector: 1.0 for each component's *current*
  // state (0 for its baseline), intercept first.  A gauge reading is a
  // snapshot of machine power at the sampling instant, so the regression
  // must be trained against the snapshot states; window occupancies are
  // time-averages of exactly these indicators, so the same linear model
  // then predicts window energy.
  std::vector<double> SnapshotFeatures() const;

  // Human-readable feature name: "bias" or "<component>[<state>]".
  std::string FeatureName(int index) const;

  // Cumulative seconds feature `index` has been active since construction
  // (the intercept reports total observed seconds).  Used to judge how well
  // excited a coefficient is.
  double FeatureSeconds(int index) const;

  // -- Evaluation-only truth access (reads the calibration table) -----------

  // True power increment of feature `index` over its component's baseline
  // state, from the component state table.  Index 0 (intercept) returns
  // TrueInterceptWatts().
  double TrueIncrementWatts(int index) const;
  // Sum of all components' baseline-state draws.
  double TrueInterceptWatts() const;

  // MachineObserver:
  void OnMachinePowerChanged(odsim::SimTime now) override;

 private:
  struct Feature {
    int component = 0;
    int state = 0;
  };

  void Accrue(odsim::SimTime now);

  Machine* machine_;
  odsim::SimTime last_time_;
  odsim::SimTime window_start_;
  std::vector<int> baseline_state_;      // Per component.
  std::vector<int> snapshot_state_;      // States over the open interval.
  std::vector<Feature> features_;        // Index i -> feature i+1.
  std::vector<int> feature_index_;       // (component, state) -> feature slot.
  std::vector<int> component_offset_;    // Into feature_index_.
  std::vector<double> window_seconds_;   // Per feature, current window.
  std::vector<double> total_seconds_;    // Per feature, since construction.
  double total_observed_seconds_ = 0.0;
};

}  // namespace odpower

#endif  // SRC_POWER_UTILIZATION_H_
