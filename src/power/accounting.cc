#include "src/power/accounting.h"

#include <algorithm>

#include "src/util/check.h"

namespace odpower {

EnergyAccounting::EnergyAccounting(Machine* machine)
    : machine_(machine), last_time_(machine->sim()->Now()) {
  OD_CHECK(machine != nullptr);
  Resnapshot();
  machine_->AddObserver(this);
  machine_->sim()->AddCpuObserver(this);
  snapshot_pid_ = machine_->sim()->current_pid();
  snapshot_proc_ = machine_->sim()->current_proc();
}

void EnergyAccounting::Resnapshot() {
  int n = machine_->component_count();
  snapshot_component_watts_.resize(static_cast<size_t>(n));
  component_joules_.resize(static_cast<size_t>(n), 0.0);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    double p = machine_->component(i).power();
    snapshot_component_watts_[static_cast<size_t>(i)] = p;
    sum += p;
  }
  snapshot_synergy_watts_ = machine_->SynergyPower();
  snapshot_total_watts_ = sum + snapshot_synergy_watts_;
}

void EnergyAccounting::AccrueTo(odsim::SimTime now) {
  OD_CHECK(now >= last_time_);
  if (now == last_time_) {
    return;
  }
  double dt = (now - last_time_).seconds();
  last_time_ = now;

  total_joules_ += snapshot_total_watts_ * dt;
  synergy_joules_ += snapshot_synergy_watts_ * dt;
  for (size_t i = 0; i < snapshot_component_watts_.size(); ++i) {
    component_joules_[i] += snapshot_component_watts_[i] * dt;
  }
  if (cached_process_ == nullptr) {
    cached_process_ = &by_process_[snapshot_pid_];
    cached_context_ = &by_context_[ContextKey(snapshot_pid_, snapshot_proc_)];
  }
  double joules = snapshot_total_watts_ * dt;
  cached_process_->joules += joules;
  cached_context_->joules += joules;
  if (snapshot_pid_ != odsim::kIdlePid) {
    cached_process_->cpu_seconds += dt;
    cached_context_->cpu_seconds += dt;
  }
}

double EnergyAccounting::TotalJoules(odsim::SimTime now) {
  AccrueTo(now);
  return total_joules_;
}

double EnergyAccounting::ComponentJoules(int index, odsim::SimTime now) {
  AccrueTo(now);
  OD_CHECK(index >= 0 && index < static_cast<int>(component_joules_.size()));
  return component_joules_[static_cast<size_t>(index)];
}

double EnergyAccounting::SynergyJoules(odsim::SimTime now) {
  AccrueTo(now);
  return synergy_joules_;
}

ContextUsage EnergyAccounting::ProcessUsage(odsim::ProcessId pid, odsim::SimTime now) {
  AccrueTo(now);
  auto it = by_process_.find(pid);
  return it == by_process_.end() ? ContextUsage{} : it->second;
}

ContextUsage EnergyAccounting::ProcedureUsage(odsim::ProcessId pid,
                                              odsim::ProcedureId proc,
                                              odsim::SimTime now) {
  AccrueTo(now);
  auto it = by_context_.find(ContextKey(pid, proc));
  return it == by_context_.end() ? ContextUsage{} : it->second;
}

std::vector<odsim::ProcessId> EnergyAccounting::Processes(odsim::SimTime now) {
  AccrueTo(now);
  std::vector<odsim::ProcessId> pids;
  pids.reserve(by_process_.size());
  for (const auto& [pid, usage] : by_process_) {
    pids.push_back(pid);
  }
  std::sort(pids.begin(), pids.end());
  return pids;
}

void EnergyAccounting::Reset(odsim::SimTime now) {
  AccrueTo(now);
  total_joules_ = 0.0;
  synergy_joules_ = 0.0;
  std::fill(component_joules_.begin(), component_joules_.end(), 0.0);
  by_process_.clear();
  by_context_.clear();
  cached_process_ = nullptr;
  cached_context_ = nullptr;
}

void EnergyAccounting::OnMachinePowerChanged(odsim::SimTime now) {
  AccrueTo(now);
  Resnapshot();
}

void EnergyAccounting::OnCpuContextSwitch(odsim::SimTime now, odsim::ProcessId pid,
                                          odsim::ProcedureId proc, bool /*busy*/) {
  AccrueTo(now);
  snapshot_pid_ = pid;
  snapshot_proc_ = proc;
  cached_process_ = nullptr;
  cached_context_ = nullptr;
}

}  // namespace odpower
