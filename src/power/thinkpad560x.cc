#include "src/power/thinkpad560x.h"

#include <memory>

namespace odpower {

ThinkPad560XSpec DefaultSpec() { return ThinkPad560XSpec{}; }

Laptop::Laptop(odsim::Simulator* sim, const ThinkPad560XSpec& spec)
    : spec_(spec),
      machine_(sim, spec.synergy_per_extra_active),
      display_(machine_.AddComponent(
          std::make_unique<Display>(spec.display_bright, spec.display_dim))),
      wavelan_(machine_.AddComponent(std::make_unique<WaveLan>(
          spec.wavelan_transmit, spec.wavelan_receive, spec.wavelan_idle,
          spec.wavelan_standby))),
      disk_(machine_.AddComponent(std::make_unique<Disk>(
          spec.disk_access, spec.disk_idle, spec.disk_standby, spec.disk_spinup,
          odsim::SimDuration::Seconds(spec.disk_spinup_seconds)))),
      cpu_(machine_.AddComponent(std::make_unique<Cpu>(spec.cpu_busy))),
      other_(machine_.AddComponent(std::make_unique<OtherComponent>(spec.other))),
      accounting_(&machine_),
      power_manager_(sim, display_, wavelan_, disk_) {
  // The Cpu component mirrors the scheduler's busy/idle status.
  sim->AddCpuObserver(cpu_);
}

double Laptop::BackgroundPowerWatts() const {
  // Display dim + WaveLAN standby + disk standby + other, plus the synergy
  // increment for the two active components (display, other).
  return spec_.display_dim + spec_.wavelan_standby + spec_.disk_standby +
         spec_.other + spec_.synergy_per_extra_active;
}

void Laptop::SetCpuSpeed(double speed) {
  machine_.sim()->set_cpu_speed(speed);
  cpu_->SetSpeed(speed);
}

std::unique_ptr<Laptop> MakeThinkPad560X(odsim::Simulator* sim) {
  return std::make_unique<Laptop>(sim, DefaultSpec());
}

}  // namespace odpower
