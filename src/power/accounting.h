// Analytic energy accounting.
//
// Integrates machine power exactly over component-state residency and CPU
// context residency.  This is the simulation's ground truth; PowerScope's
// statistical sampler (src/powerscope) must agree with it to within sampling
// error, which is checked by a property test.
//
// Attribution follows PowerScope semantics: at every instant the *entire*
// system draw is attributed to the (process, procedure) executing on the
// CPU — the kernel idle loop when nothing runs.

#ifndef SRC_POWER_ACCOUNTING_H_
#define SRC_POWER_ACCOUNTING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/power/machine.h"
#include "src/sim/simulator.h"

namespace odpower {

struct ContextUsage {
  double cpu_seconds = 0.0;
  double joules = 0.0;
};

class EnergyAccounting final : public MachineObserver, public odsim::CpuObserver {
 public:
  // Registers itself as an observer of both the machine and the simulator.
  explicit EnergyAccounting(Machine* machine);

  // Integrates up to `now`.  Safe to call at any time; idempotent for a
  // fixed `now`.
  void AccrueTo(odsim::SimTime now);

  // Total system energy since construction (or the last Reset).
  double TotalJoules(odsim::SimTime now);

  // Per-component energy; index matches Machine::component().
  double ComponentJoules(int index, odsim::SimTime now);

  // Energy of the superlinear excess, not attributable to one component.
  double SynergyJoules(odsim::SimTime now);

  // Per-process and per-procedure attribution.
  ContextUsage ProcessUsage(odsim::ProcessId pid, odsim::SimTime now);
  ContextUsage ProcedureUsage(odsim::ProcessId pid, odsim::ProcedureId proc,
                              odsim::SimTime now);

  // All processes that have accrued anything, in pid order.
  std::vector<odsim::ProcessId> Processes(odsim::SimTime now);

  // Zeroes all accumulators and restarts integration at `now`.
  void Reset(odsim::SimTime now);

  // MachineObserver:
  void OnMachinePowerChanged(odsim::SimTime now) override;

  // odsim::CpuObserver:
  void OnCpuContextSwitch(odsim::SimTime now, odsim::ProcessId pid,
                          odsim::ProcedureId proc, bool busy) override;

  Machine* machine() const { return machine_; }

 private:
  static uint64_t ContextKey(odsim::ProcessId pid, odsim::ProcedureId proc) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(pid)) << 32) |
           static_cast<uint32_t>(proc);
  }

  void Resnapshot();

  Machine* machine_;
  odsim::SimTime last_time_;

  // Snapshot of draws over the interval being integrated.
  std::vector<double> snapshot_component_watts_;
  double snapshot_synergy_watts_ = 0.0;
  double snapshot_total_watts_ = 0.0;
  odsim::ProcessId snapshot_pid_ = odsim::kIdlePid;
  odsim::ProcedureId snapshot_proc_ = odsim::kIdleProc;

  // Accumulators.
  double total_joules_ = 0.0;
  double synergy_joules_ = 0.0;
  std::vector<double> component_joules_;
  std::unordered_map<odsim::ProcessId, ContextUsage> by_process_;
  std::unordered_map<uint64_t, ContextUsage> by_context_;

  // Accumulator entries for the snapshot context, refilled lazily after a
  // context switch or Reset.  Element pointers into unordered_map survive
  // rehashing, so these stay valid until the maps are cleared.
  ContextUsage* cached_process_ = nullptr;
  ContextUsage* cached_context_ = nullptr;
};

}  // namespace odpower

#endif  // SRC_POWER_ACCOUNTING_H_
