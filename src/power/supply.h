// Energy supply.
//
// Models either a finite store of joules (for goal-directed adaptation) or
// the external supply the paper used for measurement runs (battery removed,
// effectively infinite).  The supply does no integration of its own; it
// reads residual energy off the analytic accountant, matching Section 5.1's
// "assume a known initial value" residual-energy computation.

#ifndef SRC_POWER_SUPPLY_H_
#define SRC_POWER_SUPPLY_H_

#include "src/power/accounting.h"
#include "src/sim/time.h"

namespace odpower {

class EnergySupply {
 public:
  // Finite supply of `initial_joules`, measured from the accountant's
  // current total.
  EnergySupply(EnergyAccounting* accounting, double initial_joules);

  // Remaining energy at `now`; clamped at zero.
  double ResidualJoules(odsim::SimTime now);

  bool Exhausted(odsim::SimTime now) { return ResidualJoules(now) <= 0.0; }

  double initial_joules() const { return initial_joules_; }

  // Adds energy mid-run (used when a user revises the goal with a larger
  // supply, and by tests).
  void AddJoules(double joules);

 private:
  EnergyAccounting* accounting_;
  double initial_joules_;
  double consumed_base_;
};

}  // namespace odpower

#endif  // SRC_POWER_SUPPLY_H_
