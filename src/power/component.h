// Base class for power-drawing hardware components.
//
// A component is a named state machine; each state has a power draw in
// watts.  State changes notify the owning Machine so that energy accounting
// can integrate exactly over state residency.  Subclasses may additionally
// report a continuously variable power (e.g. the zoned-backlight display),
// in which case they call NotifyPowerChanged() whenever their draw moves.

#ifndef SRC_POWER_COMPONENT_H_
#define SRC_POWER_COMPONENT_H_

#include <string>
#include <vector>

namespace odpower {

class Machine;

// Components drawing more than this are "active" for the purposes of the
// measured superlinearity of total system power (see Machine::TotalPower).
inline constexpr double kActiveThresholdWatts = 0.5;

class Component {
 public:
  Component(std::string name, std::vector<double> state_powers, int initial_state);
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }
  int state() const { return state_; }
  int state_count() const { return static_cast<int>(state_powers_.size()); }

  // Current draw in watts.  Subclasses may override to report a draw that is
  // not a pure function of the discrete state.
  virtual double power() const { return state_powers_[static_cast<size_t>(state_)]; }

  bool active() const { return power() > kActiveThresholdWatts; }

  // Table draw of `state`, whether or not it is current.  Subclasses with
  // continuously variable draw (zoned display, scaled CPU) may deviate from
  // the table at runtime; this is the calibration value.
  double state_power(int state) const {
    return state_powers_[static_cast<size_t>(state)];
  }

  // Moves to the given state and notifies the machine if the draw changed.
  void SetState(int new_state);

 protected:
  // For subclasses whose power() varies without a state change.
  void NotifyPowerChanged();

  double StatePower(int state) const {
    return state_powers_[static_cast<size_t>(state)];
  }

 private:
  friend class Machine;

  std::string name_;
  std::vector<double> state_powers_;
  int state_;
  Machine* machine_ = nullptr;  // Set when attached to a Machine.
};

}  // namespace odpower

#endif  // SRC_POWER_COMPONENT_H_
