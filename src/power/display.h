// Display power model, including zoned backlighting (Section 4).
//
// The stock display has three states: bright, dim, off.  A zoned display
// divides the backlight into a grid whose zones can be lit independently;
// when zoning is engaged, the bright-state draw becomes
//   bright_power * lit_fraction,
// i.e. zones intersecting a window at full brightness (draw proportional to
// zone area) and the rest of the screen dark — the projection model behind
// Figure 18.

#ifndef SRC_POWER_DISPLAY_H_
#define SRC_POWER_DISPLAY_H_

#include "src/power/component.h"

namespace odpower {

enum class DisplayState : int {
  kBright = 0,
  kDim = 1,
  kOff = 2,
};

class Display : public Component {
 public:
  Display(double bright_watts, double dim_watts);

  void Set(DisplayState state) { SetState(static_cast<int>(state)); }
  DisplayState display_state() const { return static_cast<DisplayState>(state()); }

  // Engages zoned backlighting with the given fraction of screen area lit
  // bright (the rest dim).  Only affects the kBright state.
  void SetZonedLitFraction(double lit_fraction);

  // Returns to a conventional single-zone backlight.
  void ClearZoning();

  bool zoned() const { return zoned_; }
  double lit_fraction() const { return lit_fraction_; }

  double power() const override;

 private:
  bool zoned_ = false;
  double lit_fraction_ = 1.0;
};

}  // namespace odpower

#endif  // SRC_POWER_DISPLAY_H_
