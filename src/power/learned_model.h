// Self-constructive power model (Sesame-style).
//
// A recursive-least-squares regressor that fits measured system power
// against per-component utilization features, online, with exponential
// forgetting.  Fed the gauge stream and the UtilizationProbe's occupancy
// vectors it converges on per-component power coefficients without ever
// reading the calibration table — which is what lets it serve two roles:
//
//   * an *independent* second energy estimator the goal director can
//     cross-check against the gauge-integrated accounting (a gauge whose
//     scale drifts away from the calibration the model learned shows up as
//     sustained prediction divergence, even when every individual reading
//     stays physically plausible);
//   * the *only* estimator on hardware with no calibration table at all,
//     after a short probe phase bootstraps the fit.
//
// Numerical hygiene, since this runs unattended inside a controller:
//
//   * covariance guarding: the P matrix's diagonal spread is a cheap
//     condition-number proxy; when it exceeds `max_condition` (weakly
//     excited features under forgetting blow their variance up) the
//     diagonal is re-regularized toward the prior, and a counter records
//     that the guard fired;
//   * coefficient clamping: fitted watts are clamped to physical bounds
//     [min_coefficient_watts, max_coefficient_watts] after every update —
//     no component of this machine draws 50 W, so a fit that says so is
//     noise, not signal;
//   * degenerate-update rejection: an observation whose gain denominator
//     underflows is skipped rather than divided by.
//
// The confidence signal combines sample count with a normalized one-step
// prediction-error EWMA; converged() is the binary form the drift sentinel
// gates on.

#ifndef SRC_POWER_LEARNED_MODEL_H_
#define SRC_POWER_LEARNED_MODEL_H_

#include <cstddef>
#include <vector>

namespace odpower {

struct LearnedModelConfig {
  // Per-observation exponential forgetting factor.  0.999 at 10 Hz gives a
  // memory on the order of 100 s: slow enough that a mid-run gauge drift
  // diverges from the model long before the model chases it.
  double forgetting = 0.999;
  // Prior coefficient variance: P starts as initial_variance * I.
  double initial_variance = 100.0;
  // Physical bounds on fitted coefficients, in watts.  Increments over a
  // baseline state may be legitimately negative (a cheaper state than the
  // resting one), hence the small negative floor.
  double min_coefficient_watts = -5.0;
  double max_coefficient_watts = 25.0;
  // Diagonal-spread guard: when max(diag P)/min(diag P) exceeds this, the
  // diagonal is re-regularized.
  double max_condition = 1e7;
  // Gain denominators below this are degenerate; the update is skipped.
  double min_denominator = 1e-9;
  // Samples before the confidence signal can saturate.
  int convergence_samples = 120;
  // Half-life, in samples, of the prediction-error EWMA.
  double error_half_life_samples = 60.0;
  // converged() requires the normalized prediction error at or below this.
  double converged_error_fraction = 0.08;
};

class LearnedModel {
 public:
  LearnedModel(int dim, const LearnedModelConfig& config = LearnedModelConfig{});

  int dim() const { return dim_; }
  const LearnedModelConfig& config() const { return config_; }

  // One RLS update: fit `measured_watts` against feature vector `phi`
  // (length dim()).  Call with the *observed* gauge reading — corrupted or
  // not; the model must mirror what the gauge says, never the analytic
  // accounting (that independence is what the drift cross-check rests on).
  void Observe(const std::vector<double>& phi, double measured_watts);

  // Current fit evaluated at `phi`, clamped to be non-negative (a power
  // model never predicts the machine generates energy).
  double PredictWatts(const std::vector<double>& phi) const;

  double coefficient(int index) const {
    return theta_[static_cast<size_t>(index)];
  }
  const std::vector<double>& coefficients() const { return theta_; }

  int samples() const { return samples_; }
  // [0, 1]: sample-count ramp times prediction-error quality.
  double confidence() const;
  // Enough samples and a small normalized prediction error.
  bool converged() const;
  // EWMA of |measured - predicted| / EWMA of |measured|.
  double prediction_error_fraction() const;
  // max(diag P) / min(diag P) — the guard's condition proxy.
  double condition_proxy() const;
  // Times the covariance guard re-regularized the diagonal.
  int guarded_updates() const { return guarded_updates_; }
  // Observations skipped for a degenerate gain denominator.
  int skipped_updates() const { return skipped_updates_; }

 private:
  double& P(int row, int col) {
    return p_[static_cast<size_t>(row * dim_ + col)];
  }
  double Pc(int row, int col) const {
    return p_[static_cast<size_t>(row * dim_ + col)];
  }

  int dim_;
  LearnedModelConfig config_;
  std::vector<double> theta_;  // Fitted coefficients, watts.
  std::vector<double> p_;      // Covariance, row-major dim x dim.
  std::vector<double> gain_;   // Scratch: k = P phi / denom.
  std::vector<double> pphi_;   // Scratch: P phi.
  int samples_ = 0;
  int guarded_updates_ = 0;
  int skipped_updates_ = 0;
  double error_ewma_ = 0.0;
  double level_ewma_ = 0.0;
  bool ewma_primed_ = false;
};

}  // namespace odpower

#endif  // SRC_POWER_LEARNED_MODEL_H_
