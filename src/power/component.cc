#include "src/power/component.h"

#include <utility>

#include "src/power/machine.h"
#include "src/util/check.h"

namespace odpower {

Component::Component(std::string name, std::vector<double> state_powers,
                     int initial_state)
    : name_(std::move(name)),
      state_powers_(std::move(state_powers)),
      state_(initial_state) {
  OD_CHECK(!state_powers_.empty());
  OD_CHECK(initial_state >= 0 && initial_state < state_count());
  for (double p : state_powers_) {
    OD_CHECK(p >= 0.0);
  }
}

void Component::SetState(int new_state) {
  OD_CHECK(new_state >= 0 && new_state < state_count());
  if (new_state == state_) {
    return;
  }
  state_ = new_state;
  NotifyPowerChanged();
}

void Component::NotifyPowerChanged() {
  if (machine_ != nullptr) {
    machine_->OnComponentPowerChanged();
  }
}

}  // namespace odpower
