// IBM ThinkPad 560X power model (Figure 4).
//
// Component draws were chosen so that the model reproduces the paper's
// published aggregates:
//   - background power (display dim, WaveLAN & disk in standby) = 5.60 W;
//   - total draw is superlinear in component draws: with the screen bright
//     and disk and network idle, the total exceeds the component sum by
//     0.21 W (modelled as +0.07 W per active component beyond the first);
//   - the display accounts for ~35% of background power.

#ifndef SRC_POWER_THINKPAD560X_H_
#define SRC_POWER_THINKPAD560X_H_

#include <memory>

#include "src/power/accounting.h"
#include "src/power/cpu.h"
#include "src/power/disk.h"
#include "src/power/display.h"
#include "src/power/machine.h"
#include "src/power/power_manager.h"
#include "src/power/wavelan.h"
#include "src/sim/simulator.h"

namespace odpower {

// Figure 4 component draws, in watts.
struct ThinkPad560XSpec {
  double display_bright = 2.95;
  double display_dim = 1.95;
  double wavelan_transmit = 1.65;
  double wavelan_receive = 1.40;
  double wavelan_idle = 0.88;
  double wavelan_standby = 0.18;
  double disk_access = 2.20;
  double disk_idle = 1.35;
  double disk_standby = 0.16;
  double disk_spinup = 3.00;
  double disk_spinup_seconds = 1.5;
  double cpu_busy = 6.00;
  double other = 3.24;
  double synergy_per_extra_active = 0.07;
};

// Returns the calibrated default spec.
ThinkPad560XSpec DefaultSpec();

// A fully wired laptop: machine + components + accounting + power manager.
class Laptop {
 public:
  Laptop(odsim::Simulator* sim, const ThinkPad560XSpec& spec);

  Machine& machine() { return machine_; }
  Display& display() { return *display_; }
  WaveLan& wavelan() { return *wavelan_; }
  Disk& disk() { return *disk_; }
  Cpu& cpu() { return *cpu_; }
  EnergyAccounting& accounting() { return accounting_; }
  PowerManager& power_manager() { return power_manager_; }
  const ThinkPad560XSpec& spec() const { return spec_; }

  // Background power in watts: display dim, network and disk in standby,
  // CPU halted.  Used as P_B in the think-time linear model (Figure 11).
  double BackgroundPowerWatts() const;

  // Sets the CPU clock to `speed` (fraction of nominal) coherently: the
  // scheduler slows work down and the CPU's busy draw scales down.
  void SetCpuSpeed(double speed);

 private:
  ThinkPad560XSpec spec_;
  Machine machine_;
  Display* display_;
  WaveLan* wavelan_;
  Disk* disk_;
  Cpu* cpu_;
  OtherComponent* other_;
  EnergyAccounting accounting_;
  PowerManager power_manager_;
};

std::unique_ptr<Laptop> MakeThinkPad560X(odsim::Simulator* sim);

}  // namespace odpower

#endif  // SRC_POWER_THINKPAD560X_H_
