// The simulated mobile computer: a set of power-drawing components plus the
// measured superlinearity of whole-system draw.
//
// The paper observes that total power is "slightly but consistently
// superlinear" in the component powers (0.21 W above the sum with four
// components active); we model this as a fixed increment per active
// component beyond the first, which reproduces both the 5.6 W background
// figure and the 0.21 W four-component excess.

#ifndef SRC_POWER_MACHINE_H_
#define SRC_POWER_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/power/component.h"
#include "src/sim/simulator.h"

namespace odpower {

class MachineObserver {
 public:
  virtual ~MachineObserver() = default;

  // Called after any component's draw changes, timestamped with sim time.
  virtual void OnMachinePowerChanged(odsim::SimTime now) = 0;
};

class Machine {
 public:
  // `synergy_watts_per_extra_active` models the superlinearity (see above).
  Machine(odsim::Simulator* sim, double synergy_watts_per_extra_active);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Attaches a component; the machine takes ownership.  Returns a typed
  // pointer for convenience.
  template <typename T>
  T* AddComponent(std::unique_ptr<T> component) {
    T* raw = component.get();
    Attach(std::move(component));
    return raw;
  }

  // Total instantaneous draw: sum of components plus the superlinear term.
  // Cached between component power changes: every draw change funnels
  // through OnComponentPowerChanged (SetState / NotifyPowerChanged), which
  // invalidates.  Recomputation sums in attach order, so the cached value
  // is bit-identical to the uncached sum.
  double TotalPower() const;

  // Superlinear excess alone (for accounting: it is not attributable to any
  // single component).
  double SynergyPower() const;

  int component_count() const { return static_cast<int>(components_.size()); }
  Component& component(int index) { return *components_[static_cast<size_t>(index)]; }
  const Component& component(int index) const {
    return *components_[static_cast<size_t>(index)];
  }

  // Finds a component by name; null if absent.
  Component* FindComponent(const std::string& name);

  // Observers are not owned and must outlive the simulation run.
  void AddObserver(MachineObserver* observer);

  odsim::Simulator* sim() { return sim_; }

  // Called by Component when its draw changes.
  void OnComponentPowerChanged();

 private:
  void Attach(std::unique_ptr<Component> component);

  odsim::Simulator* sim_;
  double synergy_watts_;
  std::vector<std::unique_ptr<Component>> components_;
  std::vector<MachineObserver*> observers_;
  mutable double cached_total_watts_ = 0.0;
  mutable bool total_dirty_ = true;
};

}  // namespace odpower

#endif  // SRC_POWER_MACHINE_H_
