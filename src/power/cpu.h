// CPU power model.
//
// The 233 MHz Pentium draws extra power only while executing; the kernel
// idle loop executes hlt, dropping the incremental CPU draw to zero (the
// baseline motherboard draw lives in the "Other" component).  The Cpu
// component observes the simulator's scheduler so that its state always
// matches whether real work is executing.
//
// Clock/voltage scaling (the "slowing the CPU" power-management technique
// the paper cites) is supported: at speed s the busy draw scales as
// s^exponent (exponent 3 models combined voltage and frequency scaling,
// P ∝ V²f with V ∝ f).  Pair with Simulator::set_cpu_speed so that work
// slows down coherently.

#ifndef SRC_POWER_CPU_H_
#define SRC_POWER_CPU_H_

#include <cmath>

#include "src/power/component.h"
#include "src/sim/simulator.h"

namespace odpower {

enum class CpuState : int {
  kBusy = 0,
  kHalt = 1,
};

class Cpu final : public Component, public odsim::CpuObserver {
 public:
  explicit Cpu(double busy_watts, double scaling_exponent = 3.0)
      : Component("CPU", {busy_watts, 0.0}, static_cast<int>(CpuState::kHalt)),
        scaling_exponent_(scaling_exponent) {}

  void OnCpuContextSwitch(odsim::SimTime /*now*/, odsim::ProcessId /*pid*/,
                          odsim::ProcedureId /*proc*/, bool busy) override {
    SetState(static_cast<int>(busy ? CpuState::kBusy : CpuState::kHalt));
  }

  CpuState cpu_state() const { return static_cast<CpuState>(state()); }

  // Clock scaling: fraction of nominal frequency.
  void SetSpeed(double speed) {
    speed_ = speed;
    NotifyPowerChanged();
  }
  double speed() const { return speed_; }

  double power() const override {
    if (cpu_state() != CpuState::kBusy) {
      return 0.0;
    }
    return Component::power() * std::pow(speed_, scaling_exponent_);
  }

 private:
  double scaling_exponent_;
  double speed_ = 1.0;
};

// The always-on remainder of the machine: motherboard, memory, chipset.
class OtherComponent : public Component {
 public:
  explicit OtherComponent(double watts) : Component("Other", {watts}, 0) {}
};

}  // namespace odpower

#endif  // SRC_POWER_CPU_H_
