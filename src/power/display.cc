#include "src/power/display.h"

#include "src/util/check.h"

namespace odpower {

Display::Display(double bright_watts, double dim_watts)
    : Component("Display", {bright_watts, dim_watts, 0.0},
                static_cast<int>(DisplayState::kBright)) {
  OD_CHECK(bright_watts >= dim_watts);
  OD_CHECK(dim_watts >= 0.0);
}

void Display::SetZonedLitFraction(double lit_fraction) {
  OD_CHECK(lit_fraction >= 0.0 && lit_fraction <= 1.0);
  zoned_ = true;
  lit_fraction_ = lit_fraction;
  NotifyPowerChanged();
}

void Display::ClearZoning() {
  if (!zoned_) {
    return;
  }
  zoned_ = false;
  lit_fraction_ = 1.0;
  NotifyPowerChanged();
}

double Display::power() const {
  if (zoned_ && display_state() == DisplayState::kBright) {
    // Lit zones draw proportionally to their area; unlit zones are dark.
    double bright = StatePower(static_cast<int>(DisplayState::kBright));
    return bright * lit_fraction_;
  }
  return Component::power();
}

}  // namespace odpower
