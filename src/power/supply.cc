#include "src/power/supply.h"

#include <algorithm>

#include "src/util/check.h"

namespace odpower {

EnergySupply::EnergySupply(EnergyAccounting* accounting, double initial_joules)
    : accounting_(accounting), initial_joules_(initial_joules) {
  OD_CHECK(accounting != nullptr);
  OD_CHECK(initial_joules > 0.0);
  // Anchor to current consumption so earlier activity does not count.
  consumed_base_ = accounting_->TotalJoules(accounting_->machine()->sim()->Now());
}

double EnergySupply::ResidualJoules(odsim::SimTime now) {
  double consumed = accounting_->TotalJoules(now) - consumed_base_;
  return std::max(0.0, initial_joules_ - consumed);
}

void EnergySupply::AddJoules(double joules) {
  OD_CHECK(joules >= 0.0);
  initial_joules_ += joules;
}

}  // namespace odpower
