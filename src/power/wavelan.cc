#include "src/power/wavelan.h"

// WaveLan is header-only; see cpu.cc.

namespace odpower {}  // namespace odpower
