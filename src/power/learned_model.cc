#include "src/power/learned_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace odpower {

LearnedModel::LearnedModel(int dim, const LearnedModelConfig& config)
    : dim_(dim), config_(config) {
  OD_CHECK(dim > 0);
  OD_CHECK(config.forgetting > 0.0 && config.forgetting <= 1.0);
  OD_CHECK(config.initial_variance > 0.0);
  OD_CHECK(config.max_coefficient_watts > config.min_coefficient_watts);
  theta_.assign(static_cast<size_t>(dim), 0.0);
  p_.assign(static_cast<size_t>(dim) * static_cast<size_t>(dim), 0.0);
  gain_.assign(static_cast<size_t>(dim), 0.0);
  pphi_.assign(static_cast<size_t>(dim), 0.0);
  for (int i = 0; i < dim; ++i) {
    P(i, i) = config.initial_variance;
  }
}

double LearnedModel::PredictWatts(const std::vector<double>& phi) const {
  OD_CHECK(static_cast<int>(phi.size()) == dim_);
  double watts = 0.0;
  for (int i = 0; i < dim_; ++i) {
    watts += theta_[static_cast<size_t>(i)] * phi[static_cast<size_t>(i)];
  }
  return std::max(0.0, watts);
}

void LearnedModel::Observe(const std::vector<double>& phi,
                           double measured_watts) {
  OD_CHECK(static_cast<int>(phi.size()) == dim_);
  if (!std::isfinite(measured_watts)) {
    ++skipped_updates_;
    return;
  }
  for (double f : phi) {
    if (!std::isfinite(f)) {
      ++skipped_updates_;
      return;
    }
  }

  // One-step (prequential) prediction error, before this observation is
  // folded in: this is the honest out-of-sample error the confidence
  // signal — and, upstream, the drift sentinel — should see.
  double predicted = 0.0;
  for (int i = 0; i < dim_; ++i) {
    predicted += theta_[static_cast<size_t>(i)] * phi[static_cast<size_t>(i)];
  }
  double alpha =
      1.0 - std::pow(0.5, 1.0 / std::max(1.0, config_.error_half_life_samples));
  double abs_error = std::abs(measured_watts - predicted);
  if (!ewma_primed_) {
    error_ewma_ = abs_error;
    level_ewma_ = std::abs(measured_watts);
    ewma_primed_ = true;
  } else {
    error_ewma_ += alpha * (abs_error - error_ewma_);
    level_ewma_ += alpha * (std::abs(measured_watts) - level_ewma_);
  }

  // RLS:  k = P phi / (lambda + phi' P phi)
  //       theta += k (y - phi' theta)
  //       P = (P - k phi' P) / lambda
  double denom = config_.forgetting;
  for (int i = 0; i < dim_; ++i) {
    double acc = 0.0;
    for (int j = 0; j < dim_; ++j) {
      acc += Pc(i, j) * phi[static_cast<size_t>(j)];
    }
    pphi_[static_cast<size_t>(i)] = acc;
    denom += acc * phi[static_cast<size_t>(i)];
  }
  if (denom < config_.min_denominator) {
    ++skipped_updates_;
    return;
  }
  for (int i = 0; i < dim_; ++i) {
    gain_[static_cast<size_t>(i)] = pphi_[static_cast<size_t>(i)] / denom;
  }
  double innovation = measured_watts - predicted;
  for (int i = 0; i < dim_; ++i) {
    theta_[static_cast<size_t>(i)] =
        std::clamp(theta_[static_cast<size_t>(i)] +
                       gain_[static_cast<size_t>(i)] * innovation,
                   config_.min_coefficient_watts, config_.max_coefficient_watts);
  }
  // P update via the symmetric form (P - k (P phi)') / lambda, then an
  // explicit symmetrization: drift of P away from symmetry is the classic
  // RLS failure mode under forgetting.
  for (int i = 0; i < dim_; ++i) {
    for (int j = 0; j < dim_; ++j) {
      P(i, j) = (Pc(i, j) - gain_[static_cast<size_t>(i)] *
                                pphi_[static_cast<size_t>(j)]) /
                config_.forgetting;
    }
  }
  for (int i = 0; i < dim_; ++i) {
    for (int j = i + 1; j < dim_; ++j) {
      double mean = 0.5 * (Pc(i, j) + Pc(j, i));
      P(i, j) = mean;
      P(j, i) = mean;
    }
  }

  // Covariance guard.  Forgetting inflates the variance of features that
  // stop being excited (1/lambda per step, unbounded); cap the diagonal at
  // the prior, and if the spread between the best- and worst-determined
  // directions still exceeds max_condition, lift the floor too.  Either
  // intervention counts as a guarded update.
  bool guarded = false;
  double max_diag = 0.0;
  for (int i = 0; i < dim_; ++i) {
    if (Pc(i, i) > config_.initial_variance) {
      P(i, i) = config_.initial_variance;
      guarded = true;
    }
    max_diag = std::max(max_diag, Pc(i, i));
  }
  double floor = max_diag / config_.max_condition;
  for (int i = 0; i < dim_; ++i) {
    if (Pc(i, i) < floor) {
      P(i, i) = floor;
      guarded = true;
    }
  }
  if (guarded) {
    ++guarded_updates_;
  }
  ++samples_;
}

double LearnedModel::prediction_error_fraction() const {
  if (!ewma_primed_ || level_ewma_ <= 0.0) {
    return 1.0;
  }
  return error_ewma_ / level_ewma_;
}

double LearnedModel::confidence() const {
  double ramp = std::min(
      1.0, static_cast<double>(samples_) /
               static_cast<double>(std::max(1, config_.convergence_samples)));
  double quality = std::clamp(1.0 - prediction_error_fraction(), 0.0, 1.0);
  return ramp * quality;
}

bool LearnedModel::converged() const {
  return samples_ >= config_.convergence_samples &&
         prediction_error_fraction() <= config_.converged_error_fraction;
}

double LearnedModel::condition_proxy() const {
  double max_diag = 0.0;
  double min_diag = p_.empty() ? 0.0 : Pc(0, 0);
  for (int i = 0; i < dim_; ++i) {
    max_diag = std::max(max_diag, Pc(i, i));
    min_diag = std::min(min_diag, Pc(i, i));
  }
  return min_diag > 0.0 ? max_diag / min_diag
                        : std::numeric_limits<double>::infinity();
}

}  // namespace odpower
