#include "src/power/utilization.h"

#include "src/util/check.h"

namespace odpower {

UtilizationProbe::UtilizationProbe(Machine* machine, odsim::SimTime now)
    : machine_(machine), last_time_(now), window_start_(now) {
  OD_CHECK(machine != nullptr);
  int components = machine->component_count();
  baseline_state_.reserve(static_cast<size_t>(components));
  snapshot_state_.reserve(static_cast<size_t>(components));
  component_offset_.reserve(static_cast<size_t>(components));
  for (int c = 0; c < components; ++c) {
    const Component& component = machine->component(c);
    baseline_state_.push_back(component.state());
    snapshot_state_.push_back(component.state());
    component_offset_.push_back(static_cast<int>(feature_index_.size()));
    for (int s = 0; s < component.state_count(); ++s) {
      if (s == component.state()) {
        feature_index_.push_back(-1);  // Baseline: folded into the intercept.
      } else {
        feature_index_.push_back(static_cast<int>(features_.size()));
        features_.push_back(Feature{c, s});
      }
    }
  }
  window_seconds_.assign(features_.size(), 0.0);
  total_seconds_.assign(features_.size(), 0.0);
  machine->AddObserver(this);
}

void UtilizationProbe::Accrue(odsim::SimTime now) {
  double dt = (now - last_time_).seconds();
  if (dt > 0.0) {
    for (size_t c = 0; c < snapshot_state_.size(); ++c) {
      int slot = feature_index_[static_cast<size_t>(
          component_offset_[c] + snapshot_state_[c])];
      if (slot >= 0) {
        window_seconds_[static_cast<size_t>(slot)] += dt;
        total_seconds_[static_cast<size_t>(slot)] += dt;
      }
    }
    total_observed_seconds_ += dt;
    last_time_ = now;
  }
  // Re-snapshot after accrual: the notification fires after the state
  // change, so the elapsed interval ran at the old states.
  for (size_t c = 0; c < snapshot_state_.size(); ++c) {
    snapshot_state_[c] = machine_->component(static_cast<int>(c)).state();
  }
}

void UtilizationProbe::OnMachinePowerChanged(odsim::SimTime now) {
  OD_CHECK(machine_->component_count() ==
           static_cast<int>(snapshot_state_.size()));
  Accrue(now);
}

std::vector<double> UtilizationProbe::DrainWindow(odsim::SimTime now,
                                                 double* window_seconds) {
  Accrue(now);
  double window = (now - window_start_).seconds();
  std::vector<double> phi(static_cast<size_t>(dim()), 0.0);
  phi[0] = 1.0;
  if (window > 0.0) {
    for (size_t i = 0; i < window_seconds_.size(); ++i) {
      phi[i + 1] = window_seconds_[i] / window;
    }
  }
  if (window_seconds != nullptr) {
    *window_seconds = window;
  }
  window_start_ = now;
  window_seconds_.assign(features_.size(), 0.0);
  return phi;
}

std::vector<double> UtilizationProbe::SnapshotFeatures() const {
  std::vector<double> phi(static_cast<size_t>(dim()), 0.0);
  phi[0] = 1.0;
  for (size_t c = 0; c < baseline_state_.size(); ++c) {
    int slot = feature_index_[static_cast<size_t>(
        component_offset_[c] + machine_->component(static_cast<int>(c)).state())];
    if (slot >= 0) {
      phi[static_cast<size_t>(slot) + 1] = 1.0;
    }
  }
  return phi;
}

std::string UtilizationProbe::FeatureName(int index) const {
  OD_CHECK(index >= 0 && index < dim());
  if (index == 0) {
    return "bias";
  }
  const Feature& feature = features_[static_cast<size_t>(index - 1)];
  return machine_->component(feature.component).name() + "[" +
         std::to_string(feature.state) + "]";
}

double UtilizationProbe::FeatureSeconds(int index) const {
  OD_CHECK(index >= 0 && index < dim());
  if (index == 0) {
    return total_observed_seconds_;
  }
  return total_seconds_[static_cast<size_t>(index - 1)];
}

double UtilizationProbe::TrueInterceptWatts(void) const {
  double watts = 0.0;
  for (size_t c = 0; c < baseline_state_.size(); ++c) {
    watts += machine_->component(static_cast<int>(c))
                 .state_power(baseline_state_[c]);
  }
  return watts;
}

double UtilizationProbe::TrueIncrementWatts(int index) const {
  OD_CHECK(index >= 0 && index < dim());
  if (index == 0) {
    return TrueInterceptWatts();
  }
  const Feature& feature = features_[static_cast<size_t>(index - 1)];
  const Component& component = machine_->component(feature.component);
  return component.state_power(feature.state) -
         component.state_power(baseline_state_[static_cast<size_t>(
             feature.component)]);
}

}  // namespace odpower
