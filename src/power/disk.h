// Disk power states.
//
// kIdle is a spinning but inactive platter; kStandby is spun down (the state
// the hardware power manager enters after 10 s of inactivity); kSpinup is
// the expensive transition back.

#ifndef SRC_POWER_DISK_H_
#define SRC_POWER_DISK_H_

#include "src/power/component.h"
#include "src/sim/time.h"

namespace odpower {

enum class DiskState : int {
  kAccess = 0,
  kIdle = 1,
  kStandby = 2,
  kSpinup = 3,
};

class Disk : public Component {
 public:
  Disk(double access_watts, double idle_watts, double standby_watts,
       double spinup_watts, odsim::SimDuration spinup_time)
      : Component("Disk", {access_watts, idle_watts, standby_watts, spinup_watts},
                  static_cast<int>(DiskState::kIdle)),
        spinup_time_(spinup_time) {}

  void Set(DiskState state) { SetState(static_cast<int>(state)); }
  DiskState disk_state() const { return static_cast<DiskState>(state()); }

  odsim::SimDuration spinup_time() const { return spinup_time_; }

 private:
  odsim::SimDuration spinup_time_;
};

}  // namespace odpower

#endif  // SRC_POWER_DISK_H_
