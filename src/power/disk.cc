#include "src/power/disk.h"

// Disk is header-only; see cpu.cc.

namespace odpower {}  // namespace odpower
