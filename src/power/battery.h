// Non-ideal battery model.
//
// The paper side-steps battery chemistry by powering the client externally
// ("to avoid confounding effects due to non-ideal battery behavior").  This
// extension models those effects so the goal director can be exercised
// against a realistic supply:
//
//   - rate-dependent capacity (Peukert's law): sustained high draw yields
//     less total energy than the nominal capacity;
//   - internal resistance: part of the drawn power is dissipated inside the
//     battery and never reaches the platform;
//   - recovery: at low draw the effective capacity relaxes back toward
//     nominal.
//
// The model integrates draw against the analytic accountant on a fixed tick
// and exposes the same Residual/Exhausted interface as EnergySupply.

#ifndef SRC_POWER_BATTERY_H_
#define SRC_POWER_BATTERY_H_

#include "src/power/accounting.h"
#include "src/sim/simulator.h"

namespace odpower {

struct BatteryConfig {
  // Energy available at the rated (1C-equivalent) draw.
  double nominal_joules = 13500.0;
  // Draw at which the nominal capacity is delivered in full.
  double rated_watts = 10.0;
  // Peukert exponent: effective drain rate = draw * (draw/rated)^(k-1) for
  // draw above rated.  1.0 = ideal; lead-acid ~1.3; Li-ion ~1.05.
  double peukert_exponent = 1.10;
  // Internal resistance loss as a fraction of draw per rated-draw unit:
  // loss = resistance_fraction * (draw/rated) * draw.
  double resistance_fraction = 0.02;
  // Integration tick.
  odsim::SimDuration tick = odsim::SimDuration::Millis(500);
};

class Battery {
 public:
  // Starts ticking immediately.
  Battery(odsim::Simulator* sim, EnergyAccounting* accounting,
          const BatteryConfig& config);

  Battery(const Battery&) = delete;
  Battery& operator=(const Battery&) = delete;

  // Energy still extractable at the rated draw.
  double ResidualJoules(odsim::SimTime now);
  bool Exhausted(odsim::SimTime now) { return ResidualJoules(now) <= 0.0; }

  double nominal_joules() const { return config_.nominal_joules; }

  // Total charge drained so far, including internal losses (>= the platform
  // energy actually delivered).
  double drained_joules() const { return drained_joules_; }

  // The battery's own losses so far.
  double loss_joules() const { return loss_joules_; }

  void Stop();

 private:
  void Tick();

  // Effective drain rate for a given platform draw, in watts-of-capacity.
  double EffectiveDrainWatts(double draw_watts) const;

  odsim::Simulator* sim_;
  EnergyAccounting* accounting_;
  BatteryConfig config_;
  odsim::SimTime last_tick_;
  double last_platform_joules_;
  double drained_joules_ = 0.0;
  double loss_joules_ = 0.0;
  bool running_ = true;
  odsim::EventHandle next_;
};

}  // namespace odpower

#endif  // SRC_POWER_BATTERY_H_
