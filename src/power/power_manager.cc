#include "src/power/power_manager.h"

#include <utility>

#include "src/util/check.h"

namespace odpower {

PowerManager::PowerManager(odsim::Simulator* sim, Display* display, WaveLan* wavelan,
                           Disk* disk)
    : sim_(sim), display_(display), wavelan_(wavelan), disk_(disk) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(display != nullptr);
  OD_CHECK(wavelan != nullptr);
  OD_CHECK(disk != nullptr);
}

WaveLanState PowerManager::NetworkRestingState() const {
  return hw_pm_enabled_ ? WaveLanState::kStandby : WaveLanState::kIdle;
}

DiskState PowerManager::DiskRestingState() const {
  // With PM off the disk never spins down; with PM on the standby timer
  // moves it from idle to standby.
  return DiskState::kIdle;
}

void PowerManager::SetHardwarePmEnabled(bool enabled) {
  hw_pm_enabled_ = enabled;
  if (!network_in_use()) {
    wavelan_->Set(NetworkRestingState());
  }
  if (!disk_busy_) {
    if (enabled) {
      ArmDiskTimer();
    } else {
      disk_timer_.Cancel();
      disk_->Set(DiskState::kIdle);
    }
  }
}

void PowerManager::set_disk_standby_timeout(odsim::SimDuration timeout) {
  OD_CHECK(timeout > odsim::SimDuration::Zero());
  disk_standby_timeout_ = timeout;
}

void PowerManager::set_disk_latency_scale(double scale) {
  OD_CHECK(scale > 0.0);
  disk_latency_scale_ = scale;
}

void PowerManager::ArmDiskTimer() {
  disk_timer_.Cancel();
  if (!hw_pm_enabled_) {
    return;
  }
  disk_timer_ = sim_->Schedule(disk_standby_timeout_, [this] {
    if (!disk_busy_ && disk_->disk_state() == DiskState::kIdle) {
      disk_->Set(DiskState::kStandby);
    }
  });
}

void PowerManager::AccessDisk(odsim::SimDuration duration, odsim::EventFn on_done) {
  if (disk_busy_) {
    disk_queue_.push_back(DiskRequest{duration, std::move(on_done)});
    return;
  }
  disk_busy_ = true;
  disk_timer_.Cancel();

  auto perform = [this, duration, on_done = std::move(on_done)]() mutable {
    disk_->Set(DiskState::kAccess);
    sim_->Schedule(duration * disk_latency_scale_,
                   [this, on_done = std::move(on_done)]() mutable {
      disk_->Set(DiskState::kIdle);
      disk_busy_ = false;
      if (on_done) {
        on_done();
      }
      if (!disk_queue_.empty()) {
        DiskRequest next = std::move(disk_queue_.front());
        disk_queue_.pop_front();
        AccessDisk(next.duration, std::move(next.on_done));
      } else {
        ArmDiskTimer();
      }
    });
  };

  if (disk_->disk_state() == DiskState::kStandby) {
    disk_->Set(DiskState::kSpinup);
    sim_->Schedule(disk_->spinup_time(), std::move(perform));
  } else {
    perform();
  }
}

void PowerManager::BeginNetworkUse() {
  if (network_use_count_ == 0 &&
      wavelan_->wavelan_state() == WaveLanState::kStandby) {
    wavelan_->Set(WaveLanState::kIdle);
  }
  ++network_use_count_;
}

void PowerManager::EndNetworkUse() {
  OD_CHECK(network_use_count_ > 0);
  --network_use_count_;
  if (network_use_count_ == 0) {
    RestNetwork();
  }
}

void PowerManager::RestNetwork() { wavelan_->Set(NetworkRestingState()); }

}  // namespace odpower
