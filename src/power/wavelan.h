// WaveLAN wireless interface power states.
//
// The paper's Odyssey modified its network package to keep the interface in
// standby except during RPCs and bulk transfers; the link model (odnet)
// drives these states.

#ifndef SRC_POWER_WAVELAN_H_
#define SRC_POWER_WAVELAN_H_

#include "src/power/component.h"

namespace odpower {

enum class WaveLanState : int {
  kTransmit = 0,
  kReceive = 1,
  kIdle = 2,
  kStandby = 3,
  kOff = 4,
};

class WaveLan : public Component {
 public:
  WaveLan(double transmit_watts, double receive_watts, double idle_watts,
          double standby_watts)
      : Component("WaveLAN", {transmit_watts, receive_watts, idle_watts,
                              standby_watts, 0.0},
                  static_cast<int>(WaveLanState::kIdle)) {}

  void Set(WaveLanState state) { SetState(static_cast<int>(state)); }
  WaveLanState wavelan_state() const { return static_cast<WaveLanState>(state()); }
};

}  // namespace odpower

#endif  // SRC_POWER_WAVELAN_H_
