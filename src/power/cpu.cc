#include "src/power/cpu.h"

// Cpu and OtherComponent are header-only; this file exists so the library
// has a translation unit anchoring their type info.

namespace odpower {}  // namespace odpower
