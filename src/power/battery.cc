#include "src/power/battery.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace odpower {

Battery::Battery(odsim::Simulator* sim, EnergyAccounting* accounting,
                 const BatteryConfig& config)
    : sim_(sim), accounting_(accounting), config_(config) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(accounting != nullptr);
  OD_CHECK(config.nominal_joules > 0.0);
  OD_CHECK(config.rated_watts > 0.0);
  OD_CHECK(config.peukert_exponent >= 1.0);
  OD_CHECK(config.tick > odsim::SimDuration::Zero());
  last_tick_ = sim_->Now();
  last_platform_joules_ = accounting_->TotalJoules(last_tick_);
  next_ = sim_->Schedule(config_.tick, [this] { Tick(); });
}

double Battery::EffectiveDrainWatts(double draw_watts) const {
  double loss =
      config_.resistance_fraction * (draw_watts / config_.rated_watts) * draw_watts;
  double rate_penalty = 1.0;
  if (draw_watts > config_.rated_watts) {
    rate_penalty = std::pow(draw_watts / config_.rated_watts,
                            config_.peukert_exponent - 1.0);
  }
  return draw_watts * rate_penalty + loss;
}

void Battery::Tick() {
  if (!running_) {
    return;
  }
  odsim::SimTime now = sim_->Now();
  double platform = accounting_->TotalJoules(now);
  double dt = (now - last_tick_).seconds();
  if (dt > 0.0) {
    double draw_watts = (platform - last_platform_joules_) / dt;
    double effective = EffectiveDrainWatts(draw_watts);
    drained_joules_ += effective * dt;
    loss_joules_ += (effective - draw_watts) * dt;
  }
  last_tick_ = now;
  last_platform_joules_ = platform;
  next_ = sim_->Schedule(config_.tick, [this] { Tick(); });
}

double Battery::ResidualJoules(odsim::SimTime now) {
  // Fold in the partial interval since the last tick so queries between
  // ticks stay monotone.
  double platform = accounting_->TotalJoules(now);
  double dt = (now - last_tick_).seconds();
  double pending = 0.0;
  if (dt > 0.0) {
    double draw_watts = (platform - last_platform_joules_) / dt;
    pending = EffectiveDrainWatts(draw_watts) * dt;
  }
  return std::max(0.0, config_.nominal_joules - drained_joules_ - pending);
}

void Battery::Stop() {
  running_ = false;
  next_.Cancel();
}

}  // namespace odpower
