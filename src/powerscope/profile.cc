#include "src/powerscope/profile.h"

#include <algorithm>
#include <cstdio>

#include "src/util/check.h"

namespace odscope {
namespace {

void AppendEntryRow(std::string& out, const ProfileEntry& entry, bool name_first) {
  char buf[256];
  if (name_first) {
    std::snprintf(buf, sizeof(buf), "%-36s %10.2f %14.2f %12.2f\n",
                  entry.name.c_str(), entry.cpu_seconds, entry.joules,
                  entry.average_watts);
  } else {
    std::snprintf(buf, sizeof(buf), "%10.2f %14.2f %12.2f   %s\n", entry.cpu_seconds,
                  entry.joules, entry.average_watts, entry.name.c_str());
  }
  out += buf;
}

}  // namespace

EnergyProfile::EnergyProfile(std::vector<ProcessProfile> processes,
                             double total_seconds)
    : processes_(std::move(processes)), total_seconds_(total_seconds) {
  std::sort(processes_.begin(), processes_.end(),
            [](const ProcessProfile& a, const ProcessProfile& b) {
              return a.summary.joules > b.summary.joules;
            });
  for (ProcessProfile& process : processes_) {
    std::sort(process.procedures.begin(), process.procedures.end(),
              [](const ProfileEntry& a, const ProfileEntry& b) {
                return a.joules > b.joules;
              });
  }
}

double EnergyProfile::TotalJoules() const {
  double total = 0.0;
  for (const ProcessProfile& p : processes_) {
    total += p.summary.joules;
  }
  return total;
}

double EnergyProfile::TotalCpuSeconds() const {
  double total = 0.0;
  for (const ProcessProfile& p : processes_) {
    total += p.summary.cpu_seconds;
  }
  return total;
}

double EnergyProfile::ProcessJoules(const std::string& name) const {
  for (const ProcessProfile& p : processes_) {
    if (p.summary.name == name) {
      return p.summary.joules;
    }
  }
  return 0.0;
}

std::string EnergyProfile::Format(const std::string& detail_process) const {
  std::string out;
  out += "Process                               CPU Time(s) Total Energy(J) Avg Power(W)\n";
  out += "------------------------------------------------------------------------------\n";
  ProfileEntry total;
  total.name = "Total";
  for (const ProcessProfile& p : processes_) {
    AppendEntryRow(out, p.summary, /*name_first=*/true);
    total.cpu_seconds += p.summary.cpu_seconds;
    total.joules += p.summary.joules;
  }
  out += "------------------------------------------------------------------------------\n";
  total.average_watts = total_seconds_ > 0.0 ? total.joules / total_seconds_ : 0.0;
  AppendEntryRow(out, total, /*name_first=*/true);

  const ProcessProfile* detail = nullptr;
  if (detail_process.empty()) {
    detail = processes_.empty() ? nullptr : &processes_.front();
  } else {
    for (const ProcessProfile& p : processes_) {
      if (p.summary.name == detail_process) {
        detail = &p;
        break;
      }
    }
  }
  if (detail != nullptr && !detail->procedures.empty()) {
    out += "\nEnergy Usage Detail for process " + detail->summary.name + "\n";
    out += "CPU Time(s) Total Energy(J) Avg Power(W)   Procedure\n";
    out += "------------------------------------------------------------------------------\n";
    for (const ProfileEntry& proc : detail->procedures) {
      AppendEntryRow(out, proc, /*name_first=*/false);
    }
  }
  return out;
}

}  // namespace odscope
