#include "src/powerscope/telemetry_faults.h"

#include <limits>

namespace odscope {

std::optional<double> TelemetryFaults::Corrupt(double raw_watts,
                                               double last_delivered,
                                               bool has_last) const {
  if (dropout_) {
    return std::nullopt;
  }
  if (nan_) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (stale_ && has_last) {
    return last_delivered;
  }
  return raw_watts * gauge_scale_;
}

}  // namespace odscope
