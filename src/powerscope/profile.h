// Energy profiles (the output of PowerScope's offline analysis stage).
//
// A profile maps energy to software components: a summary table by process
// and a detail table by procedure within each process, exactly the format of
// Figure 2 in the paper.

#ifndef SRC_POWERSCOPE_PROFILE_H_
#define SRC_POWERSCOPE_PROFILE_H_

#include <string>
#include <vector>

#include "src/sim/process.h"

namespace odscope {

struct ProfileEntry {
  std::string name;
  double cpu_seconds = 0.0;
  double joules = 0.0;
  // Average power while this entry's code was executing.
  double average_watts = 0.0;
};

struct ProcessProfile {
  odsim::ProcessId pid = 0;
  ProfileEntry summary;
  // Per-procedure detail, sorted by descending energy.
  std::vector<ProfileEntry> procedures;
};

class EnergyProfile {
 public:
  EnergyProfile(std::vector<ProcessProfile> processes, double total_seconds);

  // Processes sorted by descending energy.
  const std::vector<ProcessProfile>& processes() const { return processes_; }

  double TotalJoules() const;
  double TotalCpuSeconds() const;
  double total_seconds() const { return total_seconds_; }

  // Energy attributed to a process by name; zero if absent.
  double ProcessJoules(const std::string& name) const;

  // Renders the two-table format of Figure 2.  `detail_process` selects which
  // process gets the per-procedure table (empty = the top consumer).
  std::string Format(const std::string& detail_process = "") const;

 private:
  std::vector<ProcessProfile> processes_;
  double total_seconds_;
};

}  // namespace odscope

#endif  // SRC_POWERSCOPE_PROFILE_H_
