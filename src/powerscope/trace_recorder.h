// Per-component power-trace capture.
//
// A TraceRecorder observes a Machine (OnMachinePowerChanged fires on every
// component draw change) and maintains one run-length-encoded step function
// per component, plus one for the superlinear "Synergy" excess.  The
// recorder reads exactly the Component::power() values the analytic
// EnergyAccounting integrates, at exactly the notification instants the
// accounting accrues on, so the integral of a snapshot reproduces the
// accounting totals to floating-point accumulation error.
//
// Coalescing rules (what makes the trace a canonical signature):
//   * A notification that leaves a component's draw unchanged appends
//     nothing (RLE — fidelity switches on *other* components notify the
//     whole machine).
//   * A draw change at the same microsecond as the current segment's start
//     overwrites that segment's draw rather than opening a second one: a
//     zero-length segment is unobservable power and would make the
//     signature depend on intra-microsecond event ordering.  If the
//     overwrite lands back on the previous segment's draw, the now
//     redundant boundary is dropped entirely.
//
// Restart(now) clears history and opens fresh segments at `now` (the
// moment Measure() resets the accounting); Snapshot(now) returns the
// timelines over [restart, now].  The recorder registers itself as a
// machine observer in the constructor; observers cannot be removed, so the
// recorder must outlive every simulation run of its machine (TestBed owns
// both and keeps them together).

#ifndef SRC_POWERSCOPE_TRACE_RECORDER_H_
#define SRC_POWERSCOPE_TRACE_RECORDER_H_

#include <vector>

#include "src/power/machine.h"
#include "src/sim/time.h"
#include "src/trace/power_trace.h"

namespace odscope {

class TraceRecorder : public odpower::MachineObserver {
 public:
  // Attaches to `machine` (must outlive the recorder) and starts recording
  // at `now`.  Components present at construction define the streams; the
  // component set must not grow afterwards (OD_CHECKed on notify).
  TraceRecorder(odpower::Machine* machine, odsim::SimTime now);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Drops recorded history and re-opens every stream at `now` with the
  // machine's current draws.
  void Restart(odsim::SimTime now);

  // The timelines recorded since the last Restart, closed at `now`.
  // Trailing zero-length segments (a draw change at the very last
  // microsecond) are dropped — they cover no time and would differ between
  // otherwise identical runs that merely stop one event earlier.
  odtrace::PowerTrace Snapshot(odsim::SimTime now) const;

  odsim::SimTime start() const { return start_; }

  // odpower::MachineObserver:
  void OnMachinePowerChanged(odsim::SimTime now) override;

 private:
  // Appends a draw observation at `now` to one stream, applying the
  // coalescing rules above.
  static void Record(std::vector<odtrace::TraceSegment>* segments,
                     int64_t now_us, double watts);

  odpower::Machine* machine_;
  odsim::SimTime start_;
  // One stream per component (machine attach order), then "Synergy".
  std::vector<std::vector<odtrace::TraceSegment>> streams_;
};

}  // namespace odscope

#endif  // SRC_POWERSCOPE_TRACE_RECORDER_H_
