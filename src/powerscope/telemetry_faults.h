// Telemetry disturbance switchboard for power monitors.
//
// Real power telemetry is unreliable in ways the machine's true draw is
// not: a multimeter link drops samples, a driver wedges and repeats its
// last reading, an ACPI method returns NaN, a miscalibrated gas gauge
// scales every reading.  Each PowerMonitor implementation owns one
// TelemetryFaults instance and pushes every raw reading through
// Corrupt() before reporting it; the fault injector (src/fault) flips the
// switches here at fault-window edges.  With no switch active Corrupt()
// is the identity, so clean runs are bit-identical with or without the
// hook.
//
// Corruption is strictly observational: the machine model, the analytic
// energy accounting, and the true residual supply are untouched.  Only
// what the adaptation layer *believes* is disturbed — which is precisely
// what makes these faults a test of the goal controller.

#ifndef SRC_POWERSCOPE_TELEMETRY_FAULTS_H_
#define SRC_POWERSCOPE_TELEMETRY_FAULTS_H_

#include <optional>

namespace odscope {

class TelemetryFaults {
 public:
  // Drop readings entirely: no callback, no integration.
  void set_dropout(bool on) { dropout_ = on; }
  // Freeze telemetry: repeat the last delivered reading.
  void set_stale(bool on) { stale_ = on; }
  // Deliver NaN readings (the monitor must not integrate them).
  void set_nan(bool on) { nan_ = on; }
  // Scale every reading (1.0 = nominal); models gauge miscalibration.
  void set_gauge_scale(double scale) { gauge_scale_ = scale; }

  bool dropout() const { return dropout_; }
  bool stale() const { return stale_; }
  bool nan() const { return nan_; }
  double gauge_scale() const { return gauge_scale_; }
  bool any_active() const {
    return dropout_ || stale_ || nan_ || gauge_scale_ != 1.0;
  }

  // Applies the active disturbances to one raw reading.  Returns nullopt
  // when the sample is dropped; otherwise the (possibly corrupted) value
  // the monitor should deliver.  `last_delivered` is the monitor's
  // previous delivered reading, valid only when `has_last` — stale
  // telemetry freezes at it.  Precedence when faults overlap: dropout
  // beats everything (no reading exists to corrupt), then NaN, then
  // stale, then gauge scaling.
  std::optional<double> Corrupt(double raw_watts, double last_delivered,
                                bool has_last) const;

 private:
  bool dropout_ = false;
  bool stale_ = false;
  bool nan_ = false;
  double gauge_scale_ = 1.0;
};

}  // namespace odscope

#endif  // SRC_POWERSCOPE_TELEMETRY_FAULTS_H_
