// Raw PowerScope samples.
//
// The real tool collects two correlated streams: current levels from the
// digital multimeter (on the data-collection computer) and PC/PID pairs from
// the system monitor (on the profiling computer).  We keep the same split so
// that the offline correlation stage is a faithful reimplementation.

#ifndef SRC_POWERSCOPE_SAMPLE_H_
#define SRC_POWERSCOPE_SAMPLE_H_

#include "src/sim/process.h"
#include "src/sim/time.h"

namespace odscope {

struct CurrentSample {
  odsim::SimTime time;
  double amps;
};

struct MonitorSample {
  odsim::SimTime time;
  odsim::ProcessId pid;
  odsim::ProcedureId proc;
};

}  // namespace odscope

#endif  // SRC_POWERSCOPE_SAMPLE_H_
