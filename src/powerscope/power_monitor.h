// Interface for on-line power measurement sources.
//
// Section 5.1.1 lists three deployment paths for power monitoring: the
// prototype's external multimeter (OnlineMonitor here), a SmartBattery /
// ACPI gas gauge (SmartBattery here), or a PCMCIA multimeter.  The goal
// director only needs this narrow interface, so the source is pluggable.

#ifndef SRC_POWERSCOPE_POWER_MONITOR_H_
#define SRC_POWERSCOPE_POWER_MONITOR_H_

#include <functional>

#include "src/powerscope/telemetry_faults.h"
#include "src/sim/time.h"

namespace odscope {

class PowerMonitor {
 public:
  using SampleFn = std::function<void(odsim::SimTime, double watts)>;

  virtual ~PowerMonitor() = default;

  virtual void Start() = 0;
  virtual void Stop() = 0;

  // Most recent power reading, in watts.
  virtual double last_watts() const = 0;

  // Energy integrated from readings since Start() — what the adaptation
  // layer believes has been consumed.
  virtual double measured_joules() const = 0;

  // Sampling period (each reading covers this trailing interval).
  virtual odsim::SimDuration period() const = 0;

  // Invoked on every reading, after internal state updates.
  virtual void set_callback(SampleFn callback) = 0;

  // Telemetry disturbance switchboard, for fault injection.  Nullptr when
  // the implementation does not support telemetry faults.
  virtual TelemetryFaults* telemetry_faults() { return nullptr; }
};

}  // namespace odscope

#endif  // SRC_POWERSCOPE_POWER_MONITOR_H_
