#include "src/powerscope/trace_recorder.h"

#include <utility>

#include "src/util/check.h"

namespace odscope {

TraceRecorder::TraceRecorder(odpower::Machine* machine, odsim::SimTime now)
    : machine_(machine) {
  OD_CHECK(machine_ != nullptr);
  machine_->AddObserver(this);
  Restart(now);
}

void TraceRecorder::Restart(odsim::SimTime now) {
  start_ = now;
  streams_.assign(static_cast<size_t>(machine_->component_count()) + 1, {});
  OnMachinePowerChanged(now);
}

void TraceRecorder::Record(std::vector<odtrace::TraceSegment>* segments,
                           int64_t now_us, double watts) {
  if (!segments->empty()) {
    odtrace::TraceSegment& last = segments->back();
    if (last.watts == watts) {
      return;  // RLE: the draw did not change.
    }
    if (last.start_us == now_us) {
      // Same microsecond: overwrite rather than open a zero-length segment.
      // If that reverts to the previous draw, the boundary itself vanishes.
      if (segments->size() >= 2 &&
          (*segments)[segments->size() - 2].watts == watts) {
        segments->pop_back();
      } else {
        last.watts = watts;
      }
      return;
    }
  }
  segments->push_back(odtrace::TraceSegment{now_us, watts});
}

void TraceRecorder::OnMachinePowerChanged(odsim::SimTime now) {
  const int count = machine_->component_count();
  // The stream set is fixed at Restart; a component attached mid-recording
  // would have no history and silently skew the totals.
  OD_CHECK(streams_.size() == static_cast<size_t>(count) + 1);
  const int64_t now_us = now.micros();
  for (int i = 0; i < count; ++i) {
    Record(&streams_[static_cast<size_t>(i)], now_us,
           machine_->component(i).power());
  }
  Record(&streams_.back(), now_us, machine_->SynergyPower());
}

odtrace::PowerTrace TraceRecorder::Snapshot(odsim::SimTime now) const {
  odtrace::PowerTrace trace;
  trace.start_us = start_.micros();
  trace.end_us = now.micros();
  const int count = machine_->component_count();
  trace.components.reserve(streams_.size());
  for (size_t i = 0; i < streams_.size(); ++i) {
    odtrace::ComponentTrace component;
    component.name = i < static_cast<size_t>(count)
                         ? machine_->component(static_cast<int>(i)).name()
                         : "Synergy";
    component.segments = streams_[i];
    // A draw change at the very last microsecond covers no time; keep the
    // first segment (the step function must be total over the window) but
    // drop any other zero-length tail.
    while (component.segments.size() > 1 &&
           component.segments.back().start_us >= trace.end_us) {
      component.segments.pop_back();
    }
    trace.components.push_back(std::move(component));
  }
  return trace;
}

}  // namespace odscope
