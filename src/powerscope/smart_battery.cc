#include "src/powerscope/smart_battery.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "src/util/check.h"

namespace odscope {

namespace {

// The monitoring circuit's standing draw, attached as a machine component so
// that monitoring overhead is itself measured and adapted against.
class MonitorCircuit : public odpower::Component {
 public:
  explicit MonitorCircuit(double watts)
      : Component("SmartBattery", {watts}, 0) {}
};

}  // namespace

SmartBattery::SmartBattery(odsim::Simulator* sim, odpower::Machine* machine,
                           const SmartBatteryConfig& config, uint64_t noise_seed)
    : sim_(sim), machine_(machine), config_(config), rng_(noise_seed) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(machine != nullptr);
  OD_CHECK(config.period > odsim::SimDuration::Zero());
  OD_CHECK(config.power_quantum_watts > 0.0);
  if (config_.overhead_watts > 0.0) {
    machine_->AddComponent(
        std::make_unique<MonitorCircuit>(config_.overhead_watts));
  }
}

void SmartBattery::Start() {
  OD_CHECK(!running_);
  running_ = true;
  measured_joules_ = 0.0;
  has_delivered_ = false;
  last_reading_time_ = sim_->Now();
  TakeReading();
}

void SmartBattery::Stop() {
  running_ = false;
  next_.Cancel();
}

void SmartBattery::TakeReading() {
  if (!running_) {
    return;
  }
  odsim::SimTime now = sim_->Now();
  double watts = machine_->TotalPower();
  if (config_.noise_watts > 0.0) {
    watts = std::max(0.0, rng_.Normal(watts, config_.noise_watts));
  }
  // Gas-gauge quantization.
  watts = std::round(watts / config_.power_quantum_watts) *
          config_.power_quantum_watts;
  std::optional<double> delivered =
      faults_.Corrupt(watts, last_watts_, has_delivered_);
  if (delivered.has_value()) {
    watts = *delivered;
    if (std::isfinite(watts)) {
      last_watts_ = watts;
      has_delivered_ = true;
      // Constant power assumed over the trailing interval.  NaN readings
      // are delivered but never integrated; energy over a dropped or NaN
      // window is simply missing from the estimate (the goal controller
      // bridges such gaps itself — see GoalDirector).
      measured_joules_ += watts * (now - last_reading_time_).seconds();
    }
    last_reading_time_ = now;
    if (callback_) {
      callback_(now, watts);
    }
  } else {
    last_reading_time_ = now;
  }
  // Jittered schedule to decouple sampling from periodic app activity.
  double scale = 1.0;
  if (config_.jitter_fraction > 0.0) {
    scale = rng_.Uniform(1.0 - config_.jitter_fraction,
                         1.0 + config_.jitter_fraction);
  }
  next_ = sim_->Schedule(config_.period * scale, [this] { TakeReading(); });
}

}  // namespace odscope
