// Simulated HP 3458a digital multimeter.
//
// Samples the current drawn by the profiling computer through its external
// power input at a fixed rate (the paper samples approximately 600 times a
// second), with Gaussian measurement noise.  Each sample triggers the system
// monitor on the profiling computer, which is modelled by a trigger callback.

#ifndef SRC_POWERSCOPE_MULTIMETER_H_
#define SRC_POWERSCOPE_MULTIMETER_H_

#include <functional>
#include <vector>

#include "src/power/machine.h"
#include "src/powerscope/sample.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace odscope {

struct MultimeterConfig {
  // Input voltage; well-controlled (to within 0.25% on the paper's laptop),
  // so current samples alone suffice to infer energy.
  double supply_volts = 12.0;
  double sample_rate_hz = 600.0;
  // Standard deviation of current measurement noise, in amps.
  double noise_amps = 0.002;
};

class Multimeter {
 public:
  using TriggerFn = std::function<void(odsim::SimTime)>;

  Multimeter(odsim::Simulator* sim, odpower::Machine* machine,
             const MultimeterConfig& config, uint64_t noise_seed);

  Multimeter(const Multimeter&) = delete;
  Multimeter& operator=(const Multimeter&) = delete;

  // Starts periodic sampling; each sample is appended to samples() and the
  // trigger (if set) fires, mirroring the HP-IB trigger line.
  void Start();
  void Stop();
  bool running() const { return running_; }

  void set_trigger(TriggerFn trigger) { trigger_ = std::move(trigger); }

  const std::vector<CurrentSample>& samples() const { return samples_; }
  void ClearSamples() { samples_.clear(); }

  const MultimeterConfig& config() const { return config_; }

 private:
  void TakeSample();

  odsim::Simulator* sim_;
  odpower::Machine* machine_;
  MultimeterConfig config_;
  odutil::Rng rng_;
  bool running_ = false;
  odsim::EventHandle next_;
  TriggerFn trigger_;
  std::vector<CurrentSample> samples_;
};

}  // namespace odscope

#endif  // SRC_POWERSCOPE_MULTIMETER_H_
