// SmartBattery-based power monitor (Section 5.1.1's deployment path).
//
// The paper's prototype measures power with external hardware; a deployed
// system would read the SmartBattery / ACPI gas gauge instead: coarser
// readings (quantized current), a slower sampling rate, and a small but
// nonzero measurement overhead (the paper budgets under 14 mW).  This class
// models all three, drawing its overhead as a real component on the machine
// so the cost of monitoring is itself accounted.

#ifndef SRC_POWERSCOPE_SMART_BATTERY_H_
#define SRC_POWERSCOPE_SMART_BATTERY_H_

#include "src/power/cpu.h"
#include "src/power/machine.h"
#include "src/powerscope/power_monitor.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace odscope {

struct SmartBatteryConfig {
  // Gas gauges report on the order of once per second.
  odsim::SimDuration period = odsim::SimDuration::Seconds(1);
  // Sampling-phase jitter as a fraction of the period.  Essential: periodic
  // application activity (video chunks arrive every 0.5 s) aliases against
  // a strictly periodic 1 Hz reader, biasing the energy estimate.
  double jitter_fraction = 0.2;
  // Power readings are quantized to this granularity.
  double power_quantum_watts = 0.1;
  // Gaussian read noise before quantization.
  double noise_watts = 0.05;
  // Standing draw of the monitoring circuit (added to the machine).
  double overhead_watts = 0.010;
};

class SmartBattery : public PowerMonitor {
 public:
  SmartBattery(odsim::Simulator* sim, odpower::Machine* machine,
               const SmartBatteryConfig& config, uint64_t noise_seed);

  SmartBattery(const SmartBattery&) = delete;
  SmartBattery& operator=(const SmartBattery&) = delete;

  void Start() override;
  void Stop() override;
  double last_watts() const override { return last_watts_; }
  double measured_joules() const override { return measured_joules_; }
  odsim::SimDuration period() const override { return config_.period; }
  void set_callback(SampleFn callback) override { callback_ = std::move(callback); }

  TelemetryFaults* telemetry_faults() override { return &faults_; }

  const SmartBatteryConfig& config() const { return config_; }

 private:
  void TakeReading();

  odsim::Simulator* sim_;
  odpower::Machine* machine_;
  SmartBatteryConfig config_;
  odutil::Rng rng_;
  TelemetryFaults faults_;
  bool running_ = false;
  bool has_delivered_ = false;
  odsim::EventHandle next_;
  odsim::SimTime last_reading_time_;
  double last_watts_ = 0.0;
  double measured_joules_ = 0.0;
  SampleFn callback_;
};

}  // namespace odscope

#endif  // SRC_POWERSCOPE_SMART_BATTERY_H_
