#include "src/powerscope/online_monitor.h"

#include <algorithm>

#include "src/util/check.h"

namespace odscope {

OnlineMonitor::OnlineMonitor(odsim::Simulator* sim, odpower::Machine* machine,
                             const OnlineMonitorConfig& config, uint64_t noise_seed)
    : sim_(sim), machine_(machine), config_(config), rng_(noise_seed) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(machine != nullptr);
  OD_CHECK(config.period > odsim::SimDuration::Zero());
}

void OnlineMonitor::Start() {
  OD_CHECK(!running_);
  running_ = true;
  measured_joules_ = 0.0;
  TakeSample();
}

void OnlineMonitor::Stop() {
  running_ = false;
  next_.Cancel();
}

void OnlineMonitor::TakeSample() {
  if (!running_) {
    return;
  }
  double watts = machine_->TotalPower();
  if (config_.noise_watts > 0.0) {
    watts = std::max(0.0, rng_.Normal(watts, config_.noise_watts));
  }
  last_watts_ = watts;
  // Constant power assumed until the next sample.
  measured_joules_ += watts * config_.period.seconds();
  if (callback_) {
    callback_(sim_->Now(), watts);
  }
  next_ = sim_->Schedule(config_.period, [this] { TakeSample(); });
}

}  // namespace odscope
