#include "src/powerscope/online_monitor.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "src/util/check.h"

namespace odscope {

OnlineMonitor::OnlineMonitor(odsim::Simulator* sim, odpower::Machine* machine,
                             const OnlineMonitorConfig& config, uint64_t noise_seed)
    : sim_(sim), machine_(machine), config_(config), rng_(noise_seed) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(machine != nullptr);
  OD_CHECK(config.period > odsim::SimDuration::Zero());
}

void OnlineMonitor::Start() {
  OD_CHECK(!running_);
  running_ = true;
  measured_joules_ = 0.0;
  has_delivered_ = false;
  anchor_ = sim_->Now();
  TakeSample();
}

void OnlineMonitor::Stop() {
  if (running_ && has_delivered_) {
    // Close out the partial interval since the last sample at the last
    // known power, so stopping mid-period neither loses that tail nor
    // (as the forward-charging scheme did) counts time past the stop.
    measured_joules_ += last_watts_ * (sim_->Now() - anchor_).seconds();
    anchor_ = sim_->Now();
  }
  running_ = false;
  next_.Cancel();
}

void OnlineMonitor::TakeSample() {
  if (!running_) {
    return;
  }
  odsim::SimTime now = sim_->Now();
  double watts = machine_->TotalPower();
  if (config_.noise_watts > 0.0) {
    watts = std::max(0.0, rng_.Normal(watts, config_.noise_watts));
  }
  std::optional<double> delivered =
      faults_.Corrupt(watts, last_watts_, has_delivered_);
  if (!delivered.has_value()) {
    // Sample dropped: no reading, no integration, no callback — the
    // interval ending here is a hole in the estimate.  The sampling
    // clock keeps ticking so recovery needs no re-arming.
    anchor_ = now;
    next_ = sim_->Schedule(config_.period, [this] { TakeSample(); });
    return;
  }
  watts = *delivered;
  if (std::isfinite(watts)) {
    // Integrate the *trailing* interval at the reading that opened it:
    // energy is only charged for time that has actually elapsed.  (The
    // previous scheme charged the upcoming period at the new reading,
    // biasing the estimate a full period forward — wrong at Start, at
    // Stop, and across every power change.)  Non-finite readings are
    // delivered (the adaptation layer must cope) but never integrated
    // and never become the interval-opening reading: one NaN must not
    // poison the running energy estimate.
    if (has_delivered_) {
      measured_joules_ += last_watts_ * (now - anchor_).seconds();
    }
    last_watts_ = watts;
    has_delivered_ = true;
  }
  anchor_ = now;
  if (callback_) {
    callback_(now, watts);
  }
  next_ = sim_->Schedule(config_.period, [this] { TakeSample(); });
}

}  // namespace odscope
