#include "src/powerscope/online_monitor.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "src/util/check.h"

namespace odscope {

OnlineMonitor::OnlineMonitor(odsim::Simulator* sim, odpower::Machine* machine,
                             const OnlineMonitorConfig& config, uint64_t noise_seed)
    : sim_(sim), machine_(machine), config_(config), rng_(noise_seed) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(machine != nullptr);
  OD_CHECK(config.period > odsim::SimDuration::Zero());
}

void OnlineMonitor::Start() {
  OD_CHECK(!running_);
  running_ = true;
  measured_joules_ = 0.0;
  has_delivered_ = false;
  TakeSample();
}

void OnlineMonitor::Stop() {
  running_ = false;
  next_.Cancel();
}

void OnlineMonitor::TakeSample() {
  if (!running_) {
    return;
  }
  double watts = machine_->TotalPower();
  if (config_.noise_watts > 0.0) {
    watts = std::max(0.0, rng_.Normal(watts, config_.noise_watts));
  }
  std::optional<double> delivered =
      faults_.Corrupt(watts, last_watts_, has_delivered_);
  if (!delivered.has_value()) {
    // Sample dropped: no reading, no integration, no callback.  The
    // sampling clock keeps ticking so recovery needs no re-arming.
    next_ = sim_->Schedule(config_.period, [this] { TakeSample(); });
    return;
  }
  watts = *delivered;
  if (std::isfinite(watts)) {
    last_watts_ = watts;
    has_delivered_ = true;
    // Constant power assumed until the next sample.  Non-finite readings
    // are delivered (the adaptation layer must cope) but never integrated:
    // one NaN must not poison the running energy estimate.
    measured_joules_ += watts * config_.period.seconds();
  }
  if (callback_) {
    callback_(sim_->Now(), watts);
  }
  next_ = sim_->Schedule(config_.period, [this] { TakeSample(); });
}

}  // namespace odscope
