// PowerScope: statistical energy profiler (Section 2.1).
//
// Data collection stage: the multimeter samples current; each sample
// triggers the system monitor, which records the PC (procedure) and PID of
// the code executing on the profiling computer.
//
// Offline stage: Correlate() walks the two sample streams, converts each
// current sample into energy (V * I * dt, the input voltage being
// well-controlled), and attributes it to the recorded (process, procedure),
// yielding an EnergyProfile.

#ifndef SRC_POWERSCOPE_PROFILER_H_
#define SRC_POWERSCOPE_PROFILER_H_

#include <vector>

#include "src/power/machine.h"
#include "src/powerscope/multimeter.h"
#include "src/powerscope/profile.h"
#include "src/powerscope/sample.h"
#include "src/sim/simulator.h"

namespace odscope {

class Profiler {
 public:
  Profiler(odsim::Simulator* sim, odpower::Machine* machine,
           const MultimeterConfig& config = MultimeterConfig{},
           uint64_t noise_seed = 0x9d5c0ffee5eedULL);

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void Start();
  void Stop();

  // Offline correlation of the collected streams.
  EnergyProfile Correlate() const;

  // Total sampled energy without attribution (fast path used by tests).
  double SampledJoules() const;

  size_t sample_count() const { return multimeter_.samples().size(); }
  void ClearSamples();

 private:
  odsim::Simulator* sim_;
  Multimeter multimeter_;
  std::vector<MonitorSample> monitor_samples_;
  odsim::SimTime start_;
  odsim::SimTime stop_;
};

}  // namespace odscope

#endif  // SRC_POWERSCOPE_PROFILER_H_
