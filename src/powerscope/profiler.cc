#include "src/powerscope/profiler.h"

#include <map>
#include <utility>

#include "src/util/check.h"

namespace odscope {

Profiler::Profiler(odsim::Simulator* sim, odpower::Machine* machine,
                   const MultimeterConfig& config, uint64_t noise_seed)
    : sim_(sim), multimeter_(sim, machine, config, noise_seed) {
  multimeter_.set_trigger([this](odsim::SimTime now) {
    monitor_samples_.push_back(
        MonitorSample{now, sim_->current_pid(), sim_->current_proc()});
  });
}

void Profiler::Start() {
  start_ = sim_->Now();
  multimeter_.Start();
}

void Profiler::Stop() {
  stop_ = sim_->Now();
  multimeter_.Stop();
}

void Profiler::ClearSamples() {
  multimeter_.ClearSamples();
  monitor_samples_.clear();
}

double Profiler::SampledJoules() const {
  const std::vector<CurrentSample>& samples = multimeter_.samples();
  double dt = 1.0 / multimeter_.config().sample_rate_hz;
  double joules = 0.0;
  for (const CurrentSample& s : samples) {
    joules += s.amps * multimeter_.config().supply_volts * dt;
  }
  return joules;
}

EnergyProfile Profiler::Correlate() const {
  const std::vector<CurrentSample>& currents = multimeter_.samples();
  OD_CHECK(currents.size() == monitor_samples_.size());

  struct Accum {
    double cpu_seconds = 0.0;
    double residency_seconds = 0.0;
    double joules = 0.0;
  };
  // (pid, proc) -> accumulator; proc == -1 keys the per-process summary.
  std::map<std::pair<odsim::ProcessId, odsim::ProcedureId>, Accum> accum;

  double volts = multimeter_.config().supply_volts;
  for (size_t i = 0; i < currents.size(); ++i) {
    // Each sample covers the interval to the next sample (trailing samples
    // cover one nominal period).
    double dt = i + 1 < currents.size()
                    ? (currents[i + 1].time - currents[i].time).seconds()
                    : 1.0 / multimeter_.config().sample_rate_hz;
    double joules = currents[i].amps * volts * dt;
    const MonitorSample& ctx = monitor_samples_[i];
    double cpu = ctx.pid == odsim::kIdlePid ? 0.0 : dt;

    Accum& summary = accum[{ctx.pid, -1}];
    summary.joules += joules;
    summary.cpu_seconds += cpu;
    summary.residency_seconds += dt;
    Accum& detail = accum[{ctx.pid, ctx.proc}];
    detail.joules += joules;
    detail.cpu_seconds += cpu;
    detail.residency_seconds += dt;
  }

  const odsim::ProcessTable& processes = sim_->processes();
  std::vector<ProcessProfile> out;
  for (const auto& [key, value] : accum) {
    auto [pid, proc] = key;
    if (proc != -1) {
      continue;
    }
    ProcessProfile profile;
    profile.pid = pid;
    profile.summary.name = processes.ProcessName(pid);
    profile.summary.cpu_seconds = value.cpu_seconds;
    profile.summary.joules = value.joules;
    // Average power while this process was resident on the CPU (the idle
    // loop counts residency but not CPU time).
    profile.summary.average_watts = value.residency_seconds > 0.0
                                        ? value.joules / value.residency_seconds
                                        : 0.0;

    for (const auto& [k2, v2] : accum) {
      if (k2.first != pid || k2.second == -1) {
        continue;
      }
      ProfileEntry entry;
      entry.name = processes.ProcedureName(k2.second);
      entry.cpu_seconds = v2.cpu_seconds;
      entry.joules = v2.joules;
      entry.average_watts =
          v2.residency_seconds > 0.0 ? v2.joules / v2.residency_seconds : 0.0;
      profile.procedures.push_back(std::move(entry));
    }
    out.push_back(std::move(profile));
  }

  return EnergyProfile(std::move(out), (stop_ - start_).seconds());
}

}  // namespace odscope
