// On-line power monitor (Section 5.1.1).
//
// The deployed system cannot run full PowerScope (external hardware), so
// Odyssey uses an on-line variant: current samples every 100 ms, from which
// it tracks residual energy assuming a known initial value and constant
// power between samples.  This class is that variant: a periodic sampler
// that integrates measured power and exposes the latest reading.

#ifndef SRC_POWERSCOPE_ONLINE_MONITOR_H_
#define SRC_POWERSCOPE_ONLINE_MONITOR_H_

#include <functional>

#include "src/power/machine.h"
#include "src/powerscope/power_monitor.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace odscope {

struct OnlineMonitorConfig {
  odsim::SimDuration period = odsim::SimDuration::Millis(100);
  // Measurement noise on each power sample, in watts.
  double noise_watts = 0.02;
};

class OnlineMonitor : public PowerMonitor {
 public:
  OnlineMonitor(odsim::Simulator* sim, odpower::Machine* machine,
                const OnlineMonitorConfig& config, uint64_t noise_seed);

  OnlineMonitor(const OnlineMonitor&) = delete;
  OnlineMonitor& operator=(const OnlineMonitor&) = delete;

  void Start() override;
  void Stop() override;

  // Most recent power sample, in watts.
  double last_watts() const override { return last_watts_; }

  // Energy integrated from samples since Start() (measured, not analytic —
  // this is what the adaptation layer believes has been consumed).
  double measured_joules() const override { return measured_joules_; }

  odsim::SimDuration period() const override { return config_.period; }

  // Invoked on every sample, after internal state updates.
  void set_callback(SampleFn callback) override { callback_ = std::move(callback); }

  TelemetryFaults* telemetry_faults() override { return &faults_; }

  const OnlineMonitorConfig& config() const { return config_; }

 private:
  void TakeSample();

  odsim::Simulator* sim_;
  odpower::Machine* machine_;
  OnlineMonitorConfig config_;
  odutil::Rng rng_;
  TelemetryFaults faults_;
  bool running_ = false;
  bool has_delivered_ = false;
  // End of the last integrated (or skipped) interval: energy is charged
  // for trailing intervals only, at the power reading that opened them.
  odsim::SimTime anchor_;
  odsim::EventHandle next_;
  double last_watts_ = 0.0;
  double measured_joules_ = 0.0;
  SampleFn callback_;
};

}  // namespace odscope

#endif  // SRC_POWERSCOPE_ONLINE_MONITOR_H_
