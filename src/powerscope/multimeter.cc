#include "src/powerscope/multimeter.h"

#include <algorithm>

#include "src/util/check.h"

namespace odscope {

Multimeter::Multimeter(odsim::Simulator* sim, odpower::Machine* machine,
                       const MultimeterConfig& config, uint64_t noise_seed)
    : sim_(sim), machine_(machine), config_(config), rng_(noise_seed) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(machine != nullptr);
  OD_CHECK(config.supply_volts > 0.0);
  OD_CHECK(config.sample_rate_hz > 0.0);
}

void Multimeter::Start() {
  OD_CHECK(!running_);
  running_ = true;
  TakeSample();
}

void Multimeter::Stop() {
  running_ = false;
  next_.Cancel();
}

void Multimeter::TakeSample() {
  if (!running_) {
    return;
  }
  double amps = machine_->TotalPower() / config_.supply_volts;
  if (config_.noise_amps > 0.0) {
    amps = std::max(0.0, rng_.Normal(amps, config_.noise_amps));
  }
  samples_.push_back(CurrentSample{sim_->Now(), amps});
  if (trigger_) {
    trigger_(sim_->Now());
  }
  next_ = sim_->Schedule(odsim::SimDuration::Seconds(1.0 / config_.sample_rate_hz),
                         [this] { TakeSample(); });
}

}  // namespace odscope
