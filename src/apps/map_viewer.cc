#include "src/apps/map_viewer.h"

#include <memory>
#include <utility>

#include "src/util/check.h"

namespace odapps {

MapViewer::MapViewer(odyssey::Viceroy* viceroy, DisplayArbiter* arbiter,
                     odutil::Rng* rng, int priority)
    : viceroy_(viceroy),
      arbiter_(arbiter),
      rng_(rng),
      priority_(priority),
      spec_({"Cropped + secondary filter", "Cropped", "Secondary road filter",
             "Minor road filter", "Full"}),
      fidelity_(spec_.highest()) {
  OD_CHECK(viceroy != nullptr);
  OD_CHECK(arbiter != nullptr);
  OD_CHECK(rng != nullptr);
  odsim::Simulator* sim = viceroy_->sim();
  warden_ = static_cast<MapWarden*>(viceroy_->FindWarden("map"));
  if (warden_ == nullptr) {
    warden_ = static_cast<MapWarden*>(
        viceroy_->RegisterWarden(std::make_unique<MapWarden>(sim)));
  }
  anvil_pid_ = sim->processes().RegisterProcess("Anvil");
  render_proc_ = sim->processes().RegisterProcedure("_BuildMapLayers");
  xserver_pid_ = sim->processes().RegisterProcess("X Server");
  draw_proc_ = sim->processes().RegisterProcedure("_XDrawSegments");
  viceroy_->RegisterApplication(this);
}

MapViewer::~MapViewer() { viceroy_->UnregisterApplication(this); }

void MapViewer::SetFidelity(int level) {
  OD_CHECK(spec_.valid(level));
  fidelity_ = level;
  UpdateZones();
}

size_t MapViewer::BytesAtFidelity(const MapObject& map, MapFidelity fidelity) {
  switch (fidelity) {
    case MapFidelity::kCroppedSecondary:
      return map.cropped_secondary_bytes;
    case MapFidelity::kCropped:
      return map.cropped_bytes;
    case MapFidelity::kSecondaryFilter:
      return map.secondary_filter_bytes;
    case MapFidelity::kMinorFilter:
      return map.minor_filter_bytes;
    case MapFidelity::kFull:
      return map.full_bytes;
  }
  OD_CHECK(false);
  return 0;
}

oddisplay::Rect MapViewer::window() const {
  bool cropped = map_fidelity() == MapFidelity::kCropped ||
                 map_fidelity() == MapFidelity::kCroppedSecondary;
  return cropped ? MapWindowCropped() : MapWindowFull();
}

void MapViewer::set_zoned_controller(
    oddisplay::ZonedBacklightController* controller) {
  zoned_ = controller;
  UpdateZones();
}

void MapViewer::UpdateZones() {
  if (zoned_ != nullptr) {
    zoned_->SetWindows({window()});
  }
}

void MapViewer::ViewMap(const MapObject& map, odsim::EventFn on_done) {
  OD_CHECK(!busy_);
  busy_ = true;
  arbiter_->Acquire();
  UpdateZones();

  size_t bytes = BytesAtFidelity(map, map_fidelity());
  double server = kMapCal.server_seconds * rng_->Uniform(0.85, 1.15);
  odsim::Simulator* sim = viceroy_->sim();

  warden_->FetchMapWithStatus(
      kMapCal.request_bytes, bytes, odsim::SimDuration::Seconds(server),
      [this, bytes, sim,
       on_done = std::move(on_done)](odnet::RpcStatus status) mutable {
        size_t rendered_bytes = bytes;
        if (status != odnet::RpcStatus::kOk) {
          // Fetch failed: redraw the cached map (possibly nothing, early in
          // a session) rather than wait on a dead channel.
          ++maps_degraded_;
          rendered_bytes = cached_map_bytes_;
        } else {
          cached_map_bytes_ = bytes;
        }
        // Render: Anvil builds the layers, the X server draws them; both
        // costs scale with the amount of map data.
        double mb = static_cast<double>(rendered_bytes) / 1.0e6;
        double render = kMapCal.render_cpu_seconds_per_mb * mb *
                        rng_->Uniform(0.97, 1.03);
        odsim::EventFn finish = [this, sim,
                                 on_done = std::move(on_done)]() mutable {
          // User think time: the map stays visible.
          double think = think_seconds_;
          if (think <= 0.0) {
            arbiter_->Release();
            busy_ = false;
            if (on_done) {
              on_done();
            }
            return;
          }
          sim->Schedule(odsim::SimDuration::Seconds(think),
                        [this, on_done = std::move(on_done)]() mutable {
                          arbiter_->Release();
                          busy_ = false;
                          if (on_done) {
                            on_done();
                          }
                        });
        };
        if (rendered_bytes == 0) {
          // A failed fetch before anything was cached: there is nothing to
          // render, and zero-duration CPU work is not submittable.
          finish();
          return;
        }
        sim->SubmitWork(
            anvil_pid_, render_proc_, odsim::SimDuration::Seconds(render * 0.6),
            [this, sim, render, finish = std::move(finish)]() mutable {
              sim->SubmitWork(xserver_pid_, draw_proc_,
                              odsim::SimDuration::Seconds(render * 0.4),
                              std::move(finish));
            });
      });
}

}  // namespace odapps
