// The composite application of Section 3.7: a user searching for Web and
// map information using speech commands.  One iteration is: local
// recognition of two speech utterances, access of a Web page, access of a
// map, with five seconds of think time after each access (think time is
// part of BrowsePage/ViewMap).
//
// Section 5 runs the same loop continuously, starting an iteration every
// 25 seconds, concurrently with a background video.

#ifndef SRC_APPS_COMPOSITE_H_
#define SRC_APPS_COMPOSITE_H_

#include "src/apps/data_objects.h"
#include "src/apps/display_arbiter.h"
#include "src/apps/map_viewer.h"
#include "src/apps/speech_recognizer.h"
#include "src/apps/web_browser.h"
#include "src/sim/simulator.h"

namespace odapps {

class CompositeApp {
 public:
  // The composite user is continuously at the screen, so the display is
  // held bright for the whole run when `arbiter` is given (pass null to let
  // the per-application policy govern instead).
  CompositeApp(odsim::Simulator* sim, SpeechRecognizer* speech, WebBrowser* web,
               MapViewer* map, DisplayArbiter* arbiter = nullptr);

  CompositeApp(const CompositeApp&) = delete;
  CompositeApp& operator=(const CompositeApp&) = delete;

  // Runs `count` iterations back to back; `on_done` fires after the last.
  void RunIterations(int count, odsim::EventFn on_done);

  // Starts one iteration every `period` (Section 5's continuous workload).
  // If an iteration overruns the period, the next starts immediately after.
  void StartPeriodic(odsim::SimDuration period);
  void Stop();

  int completed_iterations() const { return completed_; }
  bool running() const { return running_; }

 private:
  void RunIteration(odsim::EventFn on_done);
  void StartPeriodicIteration();

  odsim::Simulator* sim_;
  SpeechRecognizer* speech_;
  WebBrowser* web_;
  MapViewer* map_;
  DisplayArbiter* arbiter_;
  bool holding_display_ = false;

  int completed_ = 0;
  bool running_ = false;
  bool periodic_ = false;
  odsim::SimDuration period_;
  odsim::SimTime iteration_start_;
  odsim::EventHandle next_start_;
};

}  // namespace odapps

#endif  // SRC_APPS_COMPOSITE_H_
