#include "src/apps/video_player.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/util/check.h"

namespace odapps {

VideoPlayer::VideoPlayer(odyssey::Viceroy* viceroy, DisplayArbiter* arbiter,
                         odutil::Rng* rng, int priority)
    : viceroy_(viceroy),
      arbiter_(arbiter),
      rng_(rng),
      priority_(priority),
      spec_({"Ambient (quarter window, half rate, dim)", "Premiere-C half window",
             "Premiere-C", "Premiere-B", "Baseline"}),
      fidelity_(spec_.highest()) {
  OD_CHECK(viceroy != nullptr);
  OD_CHECK(arbiter != nullptr);
  OD_CHECK(rng != nullptr);
  odsim::Simulator* sim = viceroy_->sim();
  warden_ = static_cast<VideoWarden*>(viceroy_->FindWarden("video"));
  if (warden_ == nullptr) {
    warden_ = static_cast<VideoWarden*>(
        viceroy_->RegisterWarden(std::make_unique<VideoWarden>(sim)));
  }
  xanim_pid_ = sim->processes().RegisterProcess("xanim");
  decode_proc_ = sim->processes().RegisterProcedure("_DecodeCinepakFrame");
  xserver_pid_ = sim->processes().RegisterProcess("X Server");
  render_proc_ = sim->processes().RegisterProcedure("_XPutImage");
  odyssey_pid_ = sim->processes().RegisterProcess("Odyssey");
  interrupt_pid_ = sim->processes().RegisterProcess("Interrupts-WaveLAN");
  viceroy_->RegisterApplication(this);
}

VideoPlayer::~VideoPlayer() { viceroy_->UnregisterApplication(this); }

void VideoPlayer::SetFidelity(int level) {
  OD_CHECK(spec_.valid(level));
  fidelity_ = level;
  ReacquireDisplay();
  UpdateZones();
}

VideoPlayer::Config VideoPlayer::EffectiveConfig() const {
  if (override_.has_value()) {
    return *override_;
  }
  switch (fidelity_) {
    case 0:
      return Config{VideoTrack::kPremiereC, 0.25, 0.5, /*dim_display=*/true};
    case 1:
      return Config{VideoTrack::kPremiereC, kVideoCal.reduced_window_scale};
    case 2:
      return Config{VideoTrack::kPremiereC, 1.0};
    case 3:
      return Config{VideoTrack::kPremiereB, 1.0};
    default:
      return Config{VideoTrack::kBaseline, 1.0};
  }
}

DisplayNeed VideoPlayer::CurrentNeed() const {
  return EffectiveConfig().dim_display ? DisplayNeed::kDim : DisplayNeed::kBright;
}

void VideoPlayer::ReacquireDisplay() {
  if (!playing_) {
    return;
  }
  DisplayNeed need = CurrentNeed();
  if (need != held_need_) {
    arbiter_->Acquire(need);
    arbiter_->Release(held_need_);
    held_need_ = need;
  }
}

void VideoPlayer::SetConfigOverride(const Config& config) {
  override_ = config;
  ReacquireDisplay();
  UpdateZones();
}

void VideoPlayer::ClearConfigOverride() {
  override_.reset();
  ReacquireDisplay();
  UpdateZones();
}

oddisplay::Rect VideoPlayer::window() const {
  return VideoWindow(EffectiveConfig().window_scale);
}

void VideoPlayer::set_zoned_controller(
    oddisplay::ZonedBacklightController* controller) {
  zoned_ = controller;
  UpdateZones();
}

void VideoPlayer::UpdateZones() {
  if (zoned_ != nullptr) {
    zoned_->SetWindows({window()});
  }
}

void VideoPlayer::PlayClip(const VideoClip& clip, odsim::EventFn on_done) {
  PlaySegment(clip, odsim::SimDuration::Seconds(clip.duration_seconds),
              std::move(on_done));
}

void VideoPlayer::PlaySegment(const VideoClip& clip, odsim::SimDuration duration,
                              odsim::EventFn on_done) {
  OD_CHECK(!playing_);
  playing_ = true;
  clip_ = &clip;
  position_seconds_ = 0.0;
  segment_seconds_ = std::min(duration.seconds(), clip.duration_seconds);
  on_done_ = std::move(on_done);
  held_need_ = CurrentNeed();
  arbiter_->Acquire(held_need_);
  UpdateZones();
  PlayChunk();
}

void VideoPlayer::PlayLooping(const VideoClip& clip) {
  looping_ = true;
  PlaySegment(clip, odsim::SimDuration::Seconds(clip.duration_seconds), nullptr);
}

void VideoPlayer::StopLooping() { looping_ = false; }

void VideoPlayer::PlayChunk() {
  double remaining = segment_seconds_ - position_seconds_;
  // Sub-microsecond tails are unrepresentable in integer sim time (the
  // chunk timer would round to zero); treat them as finished.
  if (remaining < 5e-7) {
    FinishPlayback();
    return;
  }
  double chunk = std::min(kVideoCal.chunk_seconds, remaining);
  Config config = EffectiveConfig();
  const VideoTrackSpec& track = clip_->track(config.track);
  odsim::Simulator* sim = viceroy_->sim();

  // Playback is paced and lossy: when a concurrent bulk transfer has the
  // channel backed up, or the previous chunk's decode/render pipeline is
  // still running (CPU contention from other applications), this chunk's
  // frames are dropped rather than queued without bound.
  // CPU contention shows as our own pipeline lagging, or as runnable work
  // from a foreign process (another application's computation) at the chunk
  // boundary; xanim politely drops frames rather than compete.
  bool foreign_work = false;
  for (odsim::ProcessId pid : sim->RunnablePids()) {
    if (pid != xanim_pid_ && pid != xserver_pid_ && pid != odyssey_pid_ &&
        pid != interrupt_pid_) {
      foreign_work = true;
      break;
    }
  }
  bool frames_dropped = viceroy_->link()->queued_transfers() >= 2 ||
                        outstanding_chunks_ > 0 || foreign_work;
  if (frames_dropped) {
    ++chunks_dropped_;
  } else {
    ++chunks_played_;
    auto bytes =
        static_cast<size_t>(track.bitrate_bps * config.rate_scale * chunk / 8.0);
    double warden_cpu = kVideoCal.odyssey_busy * chunk;
    warden_->StreamChunk(bytes, odsim::SimDuration::Seconds(warden_cpu), nullptr);

    // Decode (xanim), then render (X server).  Decode cost tracks the
    // compression level and frame rate; render cost is proportional to
    // window area (frames are decoded before reaching X, so compression
    // does not affect it).
    double decode =
        track.decode_busy * config.rate_scale * chunk * rng_->Uniform(0.98, 1.02);
    double area = config.window_scale * config.window_scale;
    double render = kVideoCal.xserver_busy_full_window * area * config.rate_scale *
                    chunk * rng_->Uniform(0.98, 1.02);
    // A short tail chunk can cost less than a microsecond of decode or
    // render CPU, which rounds to zero in integer sim time — and the
    // simulator (correctly) rejects zero-duration work.  Stages that round
    // to nothing complete inline instead.
    odsim::SimDuration decode_work = odsim::SimDuration::Seconds(decode);
    odsim::SimDuration render_work = odsim::SimDuration::Seconds(render);
    ++outstanding_chunks_;
    auto finish_render = [this] { --outstanding_chunks_; };
    if (decode_work > odsim::SimDuration::Zero()) {
      sim->SubmitWork(xanim_pid_, decode_proc_, decode_work,
                      [this, sim, render_work, finish_render] {
                        if (render_work > odsim::SimDuration::Zero()) {
                          sim->SubmitWork(xserver_pid_, render_proc_,
                                          render_work, finish_render);
                        } else {
                          finish_render();
                        }
                      });
    } else if (render_work > odsim::SimDuration::Zero()) {
      sim->SubmitWork(xserver_pid_, render_proc_, render_work, finish_render);
    } else {
      finish_render();
    }
  }

  position_seconds_ += chunk;
  next_chunk_ =
      sim->Schedule(odsim::SimDuration::Seconds(chunk), [this] { PlayChunk(); });
}

void VideoPlayer::FinishPlayback() {
  if (looping_) {
    position_seconds_ = 0.0;
    PlayChunk();
    return;
  }
  playing_ = false;
  clip_ = nullptr;
  arbiter_->Release(held_need_);
  if (on_done_) {
    odsim::EventFn done = std::move(on_done_);
    on_done_ = nullptr;
    done();
  }
}

}  // namespace odapps
