#include "src/apps/calibration.h"

namespace odapps {

std::vector<std::pair<std::string, double>> CalibrationConstants() {
  // Keep in sync with the structs in calibration.h: a constant missing here
  // is invisible to artifact provenance (and to diff's perturbation hints).
  return {
      {"video.chunk_seconds", kVideoCal.chunk_seconds},
      {"video.xserver_busy_full_window", kVideoCal.xserver_busy_full_window},
      {"video.odyssey_busy", kVideoCal.odyssey_busy},
      {"video.reduced_window_scale", kVideoCal.reduced_window_scale},
      {"speech.waveform_bytes_per_second",
       kSpeechCal.waveform_bytes_per_second},
      {"speech.frontend_rtf", kSpeechCal.frontend_rtf},
      {"speech.local_rtf_full", kSpeechCal.local_rtf_full},
      {"speech.local_rtf_reduced", kSpeechCal.local_rtf_reduced},
      {"speech.server_rtf_full", kSpeechCal.server_rtf_full},
      {"speech.server_rtf_reduced", kSpeechCal.server_rtf_reduced},
      {"speech.hybrid_local_rtf_full", kSpeechCal.hybrid_local_rtf_full},
      {"speech.hybrid_local_rtf_reduced", kSpeechCal.hybrid_local_rtf_reduced},
      {"speech.hybrid_compression", kSpeechCal.hybrid_compression},
      {"speech.hybrid_server_rtf_full", kSpeechCal.hybrid_server_rtf_full},
      {"speech.hybrid_server_rtf_reduced",
       kSpeechCal.hybrid_server_rtf_reduced},
      {"speech.reply_bytes", static_cast<double>(kSpeechCal.reply_bytes)},
      {"speech.full_vocab_disk_fraction", kSpeechCal.full_vocab_disk_fraction},
      {"map.server_seconds", kMapCal.server_seconds},
      {"map.request_bytes", static_cast<double>(kMapCal.request_bytes)},
      {"map.render_cpu_seconds_per_mb", kMapCal.render_cpu_seconds_per_mb},
      {"map.think_seconds", kMapCal.think_seconds},
      {"web.distill_seconds_per_mb", kWebCal.distill_seconds_per_mb},
      {"web.request_bytes", static_cast<double>(kWebCal.request_bytes)},
      {"web.html_bytes", static_cast<double>(kWebCal.html_bytes)},
      {"web.render_cpu_seconds_per_mb", kWebCal.render_cpu_seconds_per_mb},
      {"web.think_seconds", kWebCal.think_seconds},
      {"web.jpeg75_scale", kWebCal.jpeg75_scale},
      {"web.jpeg50_scale", kWebCal.jpeg50_scale},
      {"web.jpeg25_scale", kWebCal.jpeg25_scale},
      {"web.jpeg5_scale", kWebCal.jpeg5_scale},
  };
}

}  // namespace odapps
