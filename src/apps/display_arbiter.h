// Display arbitration between concurrent applications.
//
// Applications that present visual output hold the display while active,
// including user think time.  A holder states how much light it needs:
// kBright for foreground interaction (maps, web pages, full-fidelity
// video), kDim for ambient output (the video player's lowest fidelity level
// dims the backlight).  The display is bright if any holder needs bright,
// dim if the remaining holders accept dim, and otherwise follows the idle
// policy: off under hardware power management (the paper turns the display
// off during the speech experiments), bright without it.

#ifndef SRC_APPS_DISPLAY_ARBITER_H_
#define SRC_APPS_DISPLAY_ARBITER_H_

#include "src/power/power_manager.h"

namespace odapps {

enum class DisplayNeed {
  kBright,
  kDim,
};

class DisplayArbiter {
 public:
  explicit DisplayArbiter(odpower::PowerManager* pm);

  DisplayArbiter(const DisplayArbiter&) = delete;
  DisplayArbiter& operator=(const DisplayArbiter&) = delete;

  // Visual applications bracket their activity with Acquire/Release; the
  // need passed to Release must match the corresponding Acquire.
  void Acquire(DisplayNeed need = DisplayNeed::kBright);
  void Release(DisplayNeed need = DisplayNeed::kBright);

  // When true (hardware power management), the display turns off while no
  // application holds it.
  void set_off_when_idle(bool off);

  int holders() const { return bright_holders_ + dim_holders_; }

 private:
  void Apply();

  odpower::PowerManager* pm_;
  int bright_holders_ = 0;
  int dim_holders_ = 0;
  bool off_when_idle_ = false;
};

}  // namespace odapps

#endif  // SRC_APPS_DISPLAY_ARBITER_H_
