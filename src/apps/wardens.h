// Type-specific wardens for the four data types (Section 2.2: "there is one
// warden for each data type in the system").
//
// Wardens run in the Odyssey address space; their CPU work is attributed to
// the "Odyssey" process, matching the paper's profiles.

#ifndef SRC_APPS_WARDENS_H_
#define SRC_APPS_WARDENS_H_

#include <cstddef>

#include "src/odyssey/viceroy.h"
#include "src/odyssey/warden.h"
#include "src/sim/simulator.h"

namespace odapps {

// Shared helper: registers the Odyssey process/procedure labels.
class OdysseyWardenBase : public odyssey::Warden {
 public:
  OdysseyWardenBase(std::string data_type, odsim::Simulator* sim,
                    std::string procedure);

 protected:
  // Submits warden CPU work, attributed to the Odyssey process.
  void SubmitOdysseyWork(odsim::SimDuration work, odsim::EventFn on_complete);

 private:
  odsim::Simulator* sim_;
  odsim::ProcessId odyssey_pid_;
  odsim::ProcedureId proc_;
};

// Streams video chunks from the video server (xanim's data path).
class VideoWarden : public OdysseyWardenBase {
 public:
  explicit VideoWarden(odsim::Simulator* sim);

  // Receives one chunk of `bytes`, then runs small warden bookkeeping work.
  void StreamChunk(size_t bytes, odsim::SimDuration warden_cpu,
                   odsim::EventFn on_done);
};

// Ships waveforms (or compressed intermediate representations) to a remote
// Janus server and returns recognized text.
class SpeechWarden : public OdysseyWardenBase {
 public:
  explicit SpeechWarden(odsim::Simulator* sim);

  void RemoteRecognize(size_t waveform_bytes, size_t reply_bytes,
                       odsim::SimDuration server_time, odsim::EventFn on_done);
};

// Fetches maps, annotated with filter/crop requests, from the map server.
class MapWarden : public OdysseyWardenBase {
 public:
  explicit MapWarden(odsim::Simulator* sim);

  void FetchMap(size_t request_bytes, size_t map_bytes,
                odsim::SimDuration server_time, odsim::EventFn on_done);

  // Typed variant: the viewer falls back to its cached map when the fetch
  // fails instead of waiting on a dead channel.
  void FetchMapWithStatus(size_t request_bytes, size_t map_bytes,
                          odsim::SimDuration server_time,
                          odnet::RpcClient::StatusFn on_done);
};

// Fetches Web images through the distillation server.
class WebWarden : public OdysseyWardenBase {
 public:
  explicit WebWarden(odsim::Simulator* sim);

  void FetchImage(size_t request_bytes, size_t image_bytes,
                  odsim::SimDuration distill_time, odsim::EventFn on_done);

  // Typed variant: the browser renders a text-only page when the image
  // never arrives.
  void FetchImageWithStatus(size_t request_bytes, size_t image_bytes,
                            odsim::SimDuration distill_time,
                            odnet::RpcClient::StatusFn on_done);
};

}  // namespace odapps

#endif  // SRC_APPS_WARDENS_H_
