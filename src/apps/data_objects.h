// The data objects of Section 3.2: four video clips, four speech
// utterances, four maps, and four Web images.  Parameters (durations,
// bitrates, sizes) match the ranges the paper states; per-object variation
// drives the min-max spread in Figure 16.

#ifndef SRC_APPS_DATA_OBJECTS_H_
#define SRC_APPS_DATA_OBJECTS_H_

#include <array>
#include <cstddef>
#include <string>

#include "src/display/geometry.h"

namespace odapps {

// -- Video -------------------------------------------------------------------

enum class VideoTrack {
  kBaseline,    // Full-quality QuickTime/Cinepak encoding.
  kPremiereB,   // Moderate lossy compression (Adobe Premiere preset B).
  kPremiereC,   // Aggressive lossy compression (preset C).
};

struct VideoTrackSpec {
  double bitrate_bps;
  // Decoder (xanim) CPU busy fraction during playback.
  double decode_busy;
};

struct VideoClip {
  std::string name;
  double duration_seconds;
  VideoTrackSpec baseline;
  VideoTrackSpec premiere_b;
  VideoTrackSpec premiere_c;

  const VideoTrackSpec& track(VideoTrack t) const;
};

// The paper's clips run 127-226 seconds.
const std::array<VideoClip, 4>& StandardVideoClips();

// Normalized screen rectangle of the playback window at the given linear
// scale (1.0 = baseline window), used by the zoned-backlight projection.
oddisplay::Rect VideoWindow(double scale);

// -- Speech ------------------------------------------------------------------

struct Utterance {
  std::string name;
  double duration_seconds;  // The paper's utterances run 1-7 seconds.
};

const std::array<Utterance, 4>& StandardUtterances();

// -- Maps --------------------------------------------------------------------

struct MapObject {
  std::string name;  // City name.
  // Transfer sizes in bytes at each fidelity.
  size_t full_bytes;
  size_t minor_filter_bytes;      // Minor roads omitted.
  size_t secondary_filter_bytes;  // Minor and secondary roads omitted.
  size_t cropped_bytes;           // Cropped to half height and width.
  size_t cropped_secondary_bytes;
};

const std::array<MapObject, 4>& StandardMaps();

// Window rectangles used for the zoned-backlight projection (Figure 18):
// the full map view spans six of eight zones; the cropped view three.
oddisplay::Rect MapWindowFull();
oddisplay::Rect MapWindowCropped();

// -- Web images --------------------------------------------------------------

struct WebImage {
  std::string name;
  size_t gif_bytes;  // The paper's images run 110 B to 175 KB.
};

const std::array<WebImage, 4>& StandardWebImages();

}  // namespace odapps

#endif  // SRC_APPS_DATA_OBJECTS_H_
