#include "src/apps/testbed.h"

#include "src/odyssey/server.h"
#include "src/odyssey/warden.h"
#include "src/util/check.h"

namespace odapps {

TestBed::TestBed(const Options& options) : rng_(options.seed) {
  if (options.sim != nullptr) {
    sim_ = options.sim;
  } else {
    owned_sim_ = std::make_unique<odsim::Simulator>();
    sim_ = owned_sim_.get();
  }
  laptop_ = odpower::MakeThinkPad560X(sim_);
  link_ = std::make_unique<odnet::Link>(sim_, &laptop_->power_manager(),
                                        options.link);
  viceroy_ = std::make_unique<odyssey::Viceroy>(sim_, link_.get(),
                                                &laptop_->power_manager());
  if (options.services) {
    viceroy_->set_service_provider(options.services);
  }
  arbiter_ = std::make_unique<DisplayArbiter>(&laptop_->power_manager());

  // Priorities follow Section 5.2: Speech lowest, then Video, Map, Web.
  speech_ = std::make_unique<SpeechRecognizer>(viceroy_.get(), &rng_, 0);
  video_ = std::make_unique<VideoPlayer>(viceroy_.get(), arbiter_.get(), &rng_, 1);
  map_ = std::make_unique<MapViewer>(viceroy_.get(), arbiter_.get(), &rng_, 2);
  web_ = std::make_unique<WebBrowser>(viceroy_.get(), arbiter_.get(), &rng_, 3);

  SetHardwarePm(options.hw_pm);

  if (options.trace) {
    tracer_ = std::make_unique<odscope::TraceRecorder>(&laptop_->machine(),
                                                       sim_->Now());
  }
}

TestBed::~TestBed() = default;

void TestBed::SetHardwarePm(bool enabled) {
  laptop_->power_manager().SetHardwarePmEnabled(enabled);
  arbiter_->set_off_when_idle(enabled);
}

bool TestBed::hardware_pm() const {
  return laptop_->power_manager().hardware_pm_enabled();
}

double TestBed::Measurement::Component(const std::string& name) const {
  auto it = by_component.find(name);
  return it == by_component.end() ? 0.0 : it->second;
}

double TestBed::Measurement::Process(const std::string& name) const {
  auto it = by_process.find(name);
  return it == by_process.end() ? 0.0 : it->second;
}

TestBed::Measurement TestBed::Measure(
    const std::function<void(odsim::EventFn done)>& body) {
  odsim::SimTime start = sim_->Now();
  laptop_->accounting().Reset(start);
  if (tracer_ != nullptr) {
    tracer_->Restart(start);
  }

  bool finished = false;
  body([this, &finished] {
    finished = true;
    sim_->Stop();
  });
  sim_->Run();
  OD_CHECK_MSG(finished, "workload did not signal completion");
  return Collect(start);
}

TestBed::Measurement TestBed::MeasureFor(odsim::SimDuration duration) {
  odsim::SimTime start = sim_->Now();
  laptop_->accounting().Reset(start);
  if (tracer_ != nullptr) {
    tracer_->Restart(start);
  }
  sim_->RunUntil(start + duration);
  return Collect(start);
}

TestBed::Measurement TestBed::Collect(odsim::SimTime start) {
  odsim::SimTime now = sim_->Now();
  odpower::EnergyAccounting& accounting = laptop_->accounting();

  Measurement m;
  m.joules = accounting.TotalJoules(now);
  m.seconds = (now - start).seconds();

  odpower::Machine& machine = laptop_->machine();
  for (int i = 0; i < machine.component_count(); ++i) {
    m.by_component[machine.component(i).name()] = accounting.ComponentJoules(i, now);
  }
  m.by_component["Synergy"] = accounting.SynergyJoules(now);

  for (odsim::ProcessId pid : accounting.Processes(now)) {
    odpower::ContextUsage usage = accounting.ProcessUsage(pid, now);
    const std::string& name = sim_->processes().ProcessName(pid);
    m.by_process[name] = usage.joules;
    m.cpu_seconds[name] = usage.cpu_seconds;
  }

  for (const auto& warden : viceroy_->wardens()) {
    odserve::SharedService* service = warden->server()->service();
    Measurement::ServerStats& stats = m.by_server[service->name()];
    stats.queue_depth = service->queue_depth();
    stats.busy_seconds = service->total_busy_seconds();
    stats.completed_requests = service->completed_requests();
    stats.wait_p50_seconds = service->WaitPercentileSeconds(50.0);
    stats.wait_p95_seconds = service->WaitPercentileSeconds(95.0);
  }

  if (tracer_ != nullptr) {
    m.trace =
        std::make_shared<const odtrace::PowerTrace>(tracer_->Snapshot(now));
  }
  return m;
}

}  // namespace odapps
