#include "src/apps/fleet.h"

#include <limits>
#include <memory>
#include <utility>

#include <cmath>

#include "src/fault/fault_injector.h"
#include "src/net/link.h"
#include "src/scenario/library.h"
#include "src/odyssey/server.h"
#include "src/odyssey/viceroy.h"
#include "src/odyssey/warden.h"
#include "src/powerscope/online_monitor.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace odapps {

const std::vector<FleetLevelSpec>& FleetLevels() {
  static const std::vector<FleetLevelSpec> kLevels = {
      {"thumb", 6 * 1024, odsim::SimDuration::Millis(150)},
      {"small", 12 * 1024, odsim::SimDuration::Millis(110)},
      {"medium", 24 * 1024, odsim::SimDuration::Millis(80)},
      {"full", 48 * 1024, odsim::SimDuration::Millis(60)},
  };
  return kLevels;
}

FleetApp::FleetApp(std::string name, int priority)
    : name_(std::move(name)),
      priority_(priority),
      level_(fidelity_spec().highest()) {}

const odyssey::FidelitySpec& FleetApp::fidelity_spec() const {
  static const odyssey::FidelitySpec kSpec([] {
    std::vector<std::string> names;
    for (const FleetLevelSpec& level : FleetLevels()) {
      names.emplace_back(level.name);
    }
    return names;
  }());
  return kSpec;
}

namespace {

// One fleet device: power model, link, viceroy, app, director.  No CPU work
// is ever submitted on its behalf — the simulator models a single CPU,
// which N devices must not share — and the link's interrupt batching is
// disabled (batch size larger than any transfer) for the same reason.
struct Device {
  std::unique_ptr<odpower::Laptop> laptop;
  std::unique_ptr<odnet::Link> link;
  std::unique_ptr<odyssey::Viceroy> viceroy;
  std::unique_ptr<FleetApp> app;
  odyssey::Warden* warden = nullptr;
  std::unique_ptr<odpower::EnergySupply> supply;
  std::unique_ptr<odscope::OnlineMonitor> monitor;
  std::unique_ptr<odenergy::GoalDirector> director;
  std::unique_ptr<odutil::Rng> rng;  // Workload stream (object choice, jitter).
  // Behavior timeline gating the fetch loop (scenario_diversity); null
  // means always-on.
  const odscenario::Scenario* scenario = nullptr;
  int fetches = 0;
  int outstanding = 0;
  int scenario_skipped_ticks = 0;
};

// Where `elapsed` falls on `scenario`'s timeline, wrapped modulo the
// scenario duration: fleet runs outlive a single behavior day.
odsim::SimDuration ScenarioPhaseTime(const odscenario::Scenario& scenario,
                                     odsim::SimDuration elapsed) {
  const double duration = scenario.Duration().seconds();
  if (duration <= 0.0) {
    return odsim::SimDuration::Zero();
  }
  return odsim::SimDuration::Seconds(std::fmod(elapsed.seconds(), duration));
}

}  // namespace

FleetResult RunFleetScenario(const FleetOptions& options) {
  OD_CHECK(options.clients >= 1);
  OD_CHECK(options.shared_objects >= 1);
  OD_CHECK(options.max_outstanding >= 1);

  odsim::Simulator sim;
  odserve::SharedService service(&sim, "distill", options.service);

  odnet::LinkConfig link_config;
  link_config.interrupt_batch_bytes = std::numeric_limits<size_t>::max();

  double initial_joules = options.initial_joules;
  if (initial_joules <= 0.0) {
    initial_joules = options.watts_budget * options.goal.seconds();
  }

  odutil::Rng seeder(options.seed);
  std::vector<std::unique_ptr<Device>> devices;
  devices.reserve(options.clients);
  for (int i = 0; i < options.clients; ++i) {
    auto d = std::make_unique<Device>();
    d->laptop = odpower::MakeThinkPad560X(&sim);
    d->laptop->power_manager().SetHardwarePmEnabled(true);
    // Fleet devices are headless (the laptop is in the bag): display off.
    d->laptop->display().Set(odpower::DisplayState::kOff);
    d->link = std::make_unique<odnet::Link>(&sim, &d->laptop->power_manager(),
                                            link_config);
    d->viceroy = std::make_unique<odyssey::Viceroy>(
        &sim, d->link.get(), &d->laptop->power_manager());
    d->app = std::make_unique<FleetApp>("Tile-" + std::to_string(i));
    d->viceroy->RegisterApplication(d->app.get());
    d->warden = d->viceroy->RegisterWarden(
        std::make_unique<odyssey::Warden>("distill"), &service);
    uint64_t monitor_seed = seeder.NextU64();
    uint64_t workload_seed = seeder.NextU64();
    d->monitor = std::make_unique<odscope::OnlineMonitor>(
        &sim, &d->laptop->machine(),
        odscope::OnlineMonitorConfig{.period = options.monitor_period},
        monitor_seed);
    d->rng = std::make_unique<odutil::Rng>(workload_seed);
    if (options.scenario_diversity) {
      const std::vector<odscenario::Scenario>& library =
          odscenario::ScenarioLibrary();
      d->scenario = &library[(options.seed + static_cast<uint64_t>(i)) %
                             library.size()];
    }
    devices.push_back(std::move(d));
  }

  // Fault targets: stall windows hit the shared service (through a facade
  // session); device-scoped kinds target device 0.
  std::unique_ptr<odyssey::RemoteServer> fault_handle;
  std::unique_ptr<odfault::FaultInjector> injector;
  if (!options.fault_plan.empty()) {
    fault_handle =
        std::make_unique<odyssey::RemoteServer>(&service, "fault-target");
    odfault::FaultTargets targets;
    targets.link = devices[0]->link.get();
    targets.rpc = &devices[0]->viceroy->rpc();
    targets.pm = &devices[0]->laptop->power_manager();
    targets.servers.push_back(fault_handle.get());
    targets.monitor = devices[0]->monitor.get();
    injector = std::make_unique<odfault::FaultInjector>(&sim, targets);
  }

  // Settle: disks spin down, power states reach steady background draw.
  sim.RunUntil(sim.Now() + odsim::SimDuration::Seconds(15));
  odsim::SimTime start = sim.Now();

  for (auto& d : devices) {
    d->laptop->accounting().Reset(start);
    d->supply = std::make_unique<odpower::EnergySupply>(
        &d->laptop->accounting(), initial_joules);
    d->director = std::make_unique<odenergy::GoalDirector>(
        d->viceroy.get(), d->supply.get(), d->monitor.get(),
        start + options.goal, options.director);
    d->director->Start(/*stop_sim_on_completion=*/false);
  }
  if (injector != nullptr) {
    injector->Arm(options.fault_plan);
  }

  // Per-device fetch loop: one keyed fetch per (jittered) period, skipped
  // while too many are outstanding, stopped when the device's run is over
  // (goal met or battery dead).
  std::function<void(int)> fetch_tick = [&](int i) {
    Device& d = *devices[i];
    if (d.director->outcome() != odenergy::GoalOutcome::kRunning) {
      return;
    }
    // Behavior gating: fetch only where the device's scenario is active
    // and has coverage.  The tick keeps rescheduling through inactive
    // stretches (and keeps drawing its jitter, so the workload stream
    // stays aligned with the always-on loop's schedule).
    bool behave = true;
    if (d.scenario != nullptr) {
      odsim::SimDuration t = ScenarioPhaseTime(*d.scenario, sim.Now() - start);
      behave = d.scenario->ActiveAt(t) && d.scenario->CoverageAt(t);
      if (!behave) {
        ++d.scenario_skipped_ticks;
      }
    }
    if (behave && d.outstanding < options.max_outstanding) {
      int level = d.app->current_fidelity();
      const FleetLevelSpec& spec = FleetLevels()[level];
      int object = d.rng->UniformInt(0, options.shared_objects - 1);
      std::string key =
          "obj" + std::to_string(object) + "@f" + std::to_string(level);
      ++d.fetches;
      ++d.outstanding;
      d.warden->FetchKeyed(
          key, options.request_bytes, spec.reply_bytes, spec.distill_time,
          [&d](const odyssey::Warden::FetchOutcome&) { --d.outstanding; });
    }
    odsim::SimDuration next = options.fetch_period * d.rng->Uniform(0.9, 1.1);
    sim.Schedule(next, [&fetch_tick, i] { fetch_tick(i); });
  };
  for (int i = 0; i < options.clients; ++i) {
    // Stagger first fetches across one period so the fleet does not arrive
    // in a synchronized burst.
    odsim::SimDuration phase =
        options.fetch_period * (static_cast<double>(i) / options.clients);
    sim.Schedule(phase, [&fetch_tick, i] { fetch_tick(i); });
  }

  std::function<void()> probe_tick;
  if (options.device_probe) {
    probe_tick = [&] {
      for (int i = 0; i < options.clients; ++i) {
        options.device_probe(i, sim.Now(), *devices[i]->laptop,
                             *devices[i]->supply);
      }
      sim.Schedule(odsim::SimDuration::Seconds(1), probe_tick);
    };
    sim.Schedule(odsim::SimDuration::Seconds(1), probe_tick);
  }

  sim.RunUntil(start + options.goal + options.run_slack);
  odsim::SimTime end = sim.Now();

  for (auto& d : devices) {
    d->director->Stop();
    d->monitor->Stop();
  }

  FleetResult result;
  result.clients = options.clients;
  result.elapsed_seconds = (end - start).seconds();
  result.events_processed = sim.events_processed();
  result.devices.reserve(options.clients);
  for (auto& d : devices) {
    FleetDeviceResult dev;
    dev.goal_met = d->director->outcome() == odenergy::GoalOutcome::kGoalMet;
    dev.residual_joules = d->supply->ResidualJoules(end);
    dev.consumed_joules = d->laptop->accounting().TotalJoules(end);
    dev.final_fidelity = d->app->current_fidelity();
    dev.fetches = d->fetches;
    dev.rejected_fetches = d->warden->rejected_fetches();
    dev.cache_hits = d->warden->cache_hits();
    dev.failed_fetches = d->warden->failed_fetches();
    dev.overload_clamps = d->viceroy->overload_clamps();
    dev.scenario_skipped_ticks = d->scenario_skipped_ticks;

    result.goal_met_count += dev.goal_met ? 1 : 0;
    result.mean_final_fidelity += dev.final_fidelity;
    result.mean_residual_joules += dev.residual_joules;
    result.mean_consumed_joules += dev.consumed_joules;
    result.total_fetches += dev.fetches;
    result.total_rejected_fetches += dev.rejected_fetches;
    result.total_device_cache_hits += dev.cache_hits;
    result.devices_overload_clamped += dev.overload_clamps > 0 ? 1 : 0;
    result.total_scenario_skipped_ticks += dev.scenario_skipped_ticks;
    result.devices.push_back(dev);
  }
  result.goal_attainment =
      static_cast<double>(result.goal_met_count) / options.clients;
  result.mean_final_fidelity /= options.clients;
  result.mean_residual_joules /= options.clients;
  result.mean_consumed_joules /= options.clients;

  result.server_completed = service.completed_requests();
  result.server_rejected = service.rejected_requests();
  result.server_cache_hits = service.cache_hits();
  result.server_batch_joins = service.batch_joins();
  result.server_cache_evictions = service.cache_evictions();
  result.server_busy_seconds = service.total_busy_seconds();
  result.server_utilization =
      result.elapsed_seconds > 0.0
          ? result.server_busy_seconds / result.elapsed_seconds
          : 0.0;
  // completed_requests() already counts cache hits as completions.
  result.cache_hit_rate =
      service.completed_requests() > 0
          ? static_cast<double>(service.cache_hits()) /
                service.completed_requests()
          : 0.0;
  result.queue_wait_mean_seconds = service.MeanWaitSeconds();
  result.queue_wait_p50_seconds = service.WaitPercentileSeconds(50.0);
  result.queue_wait_p95_seconds = service.WaitPercentileSeconds(95.0);
  return result;
}

}  // namespace odapps
