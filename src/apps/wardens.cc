#include "src/apps/wardens.h"

#include <utility>

#include "src/util/check.h"

namespace odapps {

OdysseyWardenBase::OdysseyWardenBase(std::string data_type, odsim::Simulator* sim,
                                     std::string procedure)
    : Warden(std::move(data_type)), sim_(sim) {
  OD_CHECK(sim != nullptr);
  odyssey_pid_ = sim_->processes().RegisterProcess("Odyssey");
  proc_ = sim_->processes().RegisterProcedure(procedure);
}

void OdysseyWardenBase::SubmitOdysseyWork(odsim::SimDuration work,
                                          odsim::EventFn on_complete) {
  if (work <= odsim::SimDuration::Zero()) {
    if (on_complete) {
      on_complete();
    }
    return;
  }
  sim_->SubmitWork(odyssey_pid_, proc_, work, std::move(on_complete));
}

VideoWarden::VideoWarden(odsim::Simulator* sim)
    : OdysseyWardenBase("video", sim, "_sftp_DataArrived") {}

void VideoWarden::StreamChunk(size_t bytes, odsim::SimDuration warden_cpu,
                              odsim::EventFn on_done) {
  viceroy()->link()->Transfer(
      odnet::Direction::kReceive, bytes,
      [this, warden_cpu, on_done = std::move(on_done)]() mutable {
        SubmitOdysseyWork(warden_cpu, std::move(on_done));
      });
}

SpeechWarden::SpeechWarden(odsim::Simulator* sim)
    : OdysseyWardenBase("speech", sim, "_rpc2_SendResponse") {}

void SpeechWarden::RemoteRecognize(size_t waveform_bytes, size_t reply_bytes,
                                   odsim::SimDuration server_time,
                                   odsim::EventFn on_done) {
  Fetch(waveform_bytes, reply_bytes, server_time, std::move(on_done));
}

MapWarden::MapWarden(odsim::Simulator* sim)
    : OdysseyWardenBase("map", sim, "_map_FetchReply") {}

void MapWarden::FetchMap(size_t request_bytes, size_t map_bytes,
                         odsim::SimDuration server_time, odsim::EventFn on_done) {
  Fetch(request_bytes, map_bytes, server_time, std::move(on_done));
}

void MapWarden::FetchMapWithStatus(size_t request_bytes, size_t map_bytes,
                                   odsim::SimDuration server_time,
                                   odnet::RpcClient::StatusFn on_done) {
  FetchWithStatus(request_bytes, map_bytes, server_time, std::move(on_done));
}

WebWarden::WebWarden(odsim::Simulator* sim)
    : OdysseyWardenBase("web", sim, "_distill_Fetch") {}

void WebWarden::FetchImage(size_t request_bytes, size_t image_bytes,
                           odsim::SimDuration distill_time, odsim::EventFn on_done) {
  Fetch(request_bytes, image_bytes, distill_time, std::move(on_done));
}

void WebWarden::FetchImageWithStatus(size_t request_bytes, size_t image_bytes,
                                     odsim::SimDuration distill_time,
                                     odnet::RpcClient::StatusFn on_done) {
  FetchWithStatus(request_bytes, image_bytes, distill_time, std::move(on_done));
}

}  // namespace odapps
