#include "src/apps/composite.h"

#include <utility>

#include "src/util/check.h"

namespace odapps {

CompositeApp::CompositeApp(odsim::Simulator* sim, SpeechRecognizer* speech,
                           WebBrowser* web, MapViewer* map, DisplayArbiter* arbiter)
    : sim_(sim), speech_(speech), web_(web), map_(map), arbiter_(arbiter) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(speech != nullptr);
  OD_CHECK(web != nullptr);
  OD_CHECK(map != nullptr);
}

void CompositeApp::RunIterations(int count, odsim::EventFn on_done) {
  OD_CHECK(count >= 0);
  OD_CHECK(!running_);
  if (arbiter_ != nullptr && !holding_display_) {
    holding_display_ = true;
    arbiter_->Acquire();
  }
  if (count == 0) {
    if (holding_display_) {
      holding_display_ = false;
      arbiter_->Release();
    }
    if (on_done) {
      on_done();
    }
    return;
  }
  running_ = true;
  RunIteration([this, count, on_done = std::move(on_done)]() mutable {
    running_ = false;
    RunIterations(count - 1, std::move(on_done));
  });
}

void CompositeApp::StartPeriodic(odsim::SimDuration period) {
  OD_CHECK(!periodic_);
  OD_CHECK(!running_);
  OD_CHECK(period > odsim::SimDuration::Zero());
  periodic_ = true;
  period_ = period;
  if (arbiter_ != nullptr && !holding_display_) {
    holding_display_ = true;
    arbiter_->Acquire();
  }
  StartPeriodicIteration();
}

void CompositeApp::StartPeriodicIteration() {
  if (!periodic_) {
    return;
  }
  running_ = true;
  iteration_start_ = sim_->Now();
  RunIteration([this] {
    running_ = false;
    if (!periodic_) {
      return;
    }
    odsim::SimTime next = iteration_start_ + period_;
    if (next <= sim_->Now()) {
      StartPeriodicIteration();
    } else {
      next_start_ = sim_->ScheduleAt(next, [this] { StartPeriodicIteration(); });
    }
  });
}

void CompositeApp::Stop() {
  periodic_ = false;
  next_start_.Cancel();
  if (holding_display_) {
    holding_display_ = false;
    arbiter_->Release();
  }
}

void CompositeApp::RunIteration(odsim::EventFn on_done) {
  const auto& utterances = StandardUtterances();
  const auto& images = StandardWebImages();
  const auto& maps = StandardMaps();
  int i = completed_;

  const Utterance& first = utterances[static_cast<size_t>((2 * i) % 4)];
  const Utterance& second = utterances[static_cast<size_t>((2 * i + 1) % 4)];
  const WebImage& image = images[static_cast<size_t>(i % 4)];
  const MapObject& map = maps[static_cast<size_t>(i % 4)];

  speech_->Recognize(first, [this, &second, &image, &map,
                             on_done = std::move(on_done)]() mutable {
    speech_->Recognize(second, [this, &image, &map,
                                on_done = std::move(on_done)]() mutable {
      web_->BrowsePage(image, [this, &map, on_done = std::move(on_done)]() mutable {
        map_->ViewMap(map, [this, on_done = std::move(on_done)]() mutable {
          ++completed_;
          if (on_done) {
            on_done();
          }
        });
      });
    });
  });
}

}  // namespace odapps
