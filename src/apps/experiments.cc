#include "src/apps/experiments.h"

#include <memory>

#include "src/apps/composite.h"
#include "src/display/zoned.h"
#include "src/util/check.h"

namespace odapps {

void Settle(TestBed& bed) {
  bed.sim().RunUntil(bed.sim().Now() + odsim::SimDuration::Seconds(15));
}

TestBed::Measurement RunVideoExperiment(const VideoClip& clip, VideoTrack track,
                                        double window_scale, bool hw_pm,
                                        uint64_t seed, bool trace) {
  TestBed bed(TestBed::Options{
      .seed = seed, .hw_pm = hw_pm, .link = {}, .trace = trace});
  bed.video().SetConfigOverride(VideoPlayer::Config{track, window_scale});
  Settle(bed);
  return bed.Measure([&](odsim::EventFn done) {
    bed.video().PlayClip(clip, std::move(done));
  });
}

TestBed::Measurement RunSpeechExperiment(const Utterance& utterance,
                                         SpeechMode mode, bool reduced_model,
                                         bool hw_pm, uint64_t seed) {
  TestBed bed(TestBed::Options{.seed = seed, .hw_pm = hw_pm, .link = {}});
  bed.speech().set_mode(mode);
  bed.speech().SetFidelity(reduced_model ? 0 : bed.speech().fidelity_spec().highest());
  Settle(bed);
  return bed.Measure([&](odsim::EventFn done) {
    bed.speech().Recognize(utterance, std::move(done));
  });
}

TestBed::Measurement RunMapExperiment(const MapObject& map, MapFidelity fidelity,
                                      double think_seconds, bool hw_pm,
                                      uint64_t seed) {
  TestBed bed(TestBed::Options{.seed = seed, .hw_pm = hw_pm, .link = {}});
  bed.map().SetFidelity(static_cast<int>(fidelity));
  bed.map().set_think_seconds(think_seconds);
  Settle(bed);
  return bed.Measure([&](odsim::EventFn done) {
    bed.map().ViewMap(map, std::move(done));
  });
}

TestBed::Measurement RunWebExperiment(const WebImage& image, WebFidelity fidelity,
                                      double think_seconds, bool hw_pm,
                                      uint64_t seed, bool trace) {
  TestBed bed(TestBed::Options{
      .seed = seed, .hw_pm = hw_pm, .link = {}, .trace = trace});
  bed.web().SetFidelity(static_cast<int>(fidelity));
  bed.web().set_think_seconds(think_seconds);
  Settle(bed);
  return bed.Measure([&](odsim::EventFn done) {
    bed.web().BrowsePage(image, std::move(done));
  });
}

TestBed::Measurement RunCompositeExperiment(int iterations, bool lowest_fidelity,
                                            bool hw_pm, bool with_video,
                                            uint64_t seed) {
  TestBed bed(TestBed::Options{.seed = seed, .hw_pm = hw_pm, .link = {}});
  if (lowest_fidelity) {
    bed.speech().SetFidelity(0);
    bed.video().SetFidelity(0);
    bed.map().SetFidelity(0);
    bed.web().SetFidelity(0);
  }
  Settle(bed);
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map(),
                         &bed.arbiter());
  return bed.Measure([&](odsim::EventFn done) {
    if (with_video) {
      bed.video().PlayLooping(StandardVideoClips()[0]);
    }
    composite.RunIterations(iterations, [&bed, done = std::move(done)]() mutable {
      bed.video().StopLooping();
      done();
    });
  });
}

TestBed::Measurement RunZonedVideoExperiment(const VideoClip& clip,
                                             VideoTrack track, double window_scale,
                                             int zones, uint64_t seed) {
  OD_CHECK(zones == 0 || zones == 4 || zones == 8);
  TestBed bed(TestBed::Options{.seed = seed, .hw_pm = true, .link = {}});
  bed.video().SetConfigOverride(VideoPlayer::Config{track, window_scale});
  std::unique_ptr<oddisplay::ZonedBacklightController> zoned;
  if (zones != 0) {
    zoned = std::make_unique<oddisplay::ZonedBacklightController>(
        &bed.laptop().display(), zones == 4 ? oddisplay::ZoneLayout::FourZone()
                                            : oddisplay::ZoneLayout::EightZone());
    bed.video().set_zoned_controller(zoned.get());
  }
  Settle(bed);
  return bed.Measure([&](odsim::EventFn done) {
    bed.video().PlayClip(clip, std::move(done));
  });
}

TestBed::Measurement RunZonedMapExperiment(const MapObject& map,
                                           MapFidelity fidelity,
                                           double think_seconds, int zones,
                                           uint64_t seed) {
  OD_CHECK(zones == 0 || zones == 4 || zones == 8);
  TestBed bed(TestBed::Options{.seed = seed, .hw_pm = true, .link = {}});
  bed.map().SetFidelity(static_cast<int>(fidelity));
  bed.map().set_think_seconds(think_seconds);
  std::unique_ptr<oddisplay::ZonedBacklightController> zoned;
  if (zones != 0) {
    zoned = std::make_unique<oddisplay::ZonedBacklightController>(
        &bed.laptop().display(), zones == 4 ? oddisplay::ZoneLayout::FourZone()
                                            : oddisplay::ZoneLayout::EightZone());
    bed.map().set_zoned_controller(zoned.get());
  }
  Settle(bed);
  return bed.Measure([&](odsim::EventFn done) {
    bed.map().ViewMap(map, std::move(done));
  });
}

}  // namespace odapps
