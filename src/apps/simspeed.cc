#include "src/apps/simspeed.h"

#include <bit>
#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "src/apps/fleet.h"
#include "src/power/thinkpad560x.h"
#include "src/powerscope/online_monitor.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace odapps {

namespace {

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint32_t Fold32(uint64_t hash) {
  return static_cast<uint32_t>(hash ^ (hash >> 32));
}

double WallSecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

SimspeedCell RunQueueChurnCell(uint64_t seed) {
  constexpr int kTimers = 512;
  const odsim::SimDuration kHorizon = odsim::SimDuration::Seconds(60);
  const odsim::SimDuration kDeadline = odsim::SimDuration::Millis(50);

  odsim::Simulator sim;
  odutil::Rng seeder(seed);
  std::vector<odutil::Rng> jitter;
  jitter.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    jitter.emplace_back(seeder.NextU64());
  }
  std::vector<odsim::EventHandle> deadlines(kTimers);
  uint64_t hash = 1469598103934665603ULL;
  uint64_t deadline_fires = 0;

  std::function<void(int)> tick = [&](int i) {
    hash = FnvMix(hash, (static_cast<uint64_t>(i) << 40) ^
                            static_cast<uint64_t>(sim.Now().micros()));
    // The RPC-deadline pattern: arm a timer that the next tick cancels.
    deadlines[static_cast<size_t>(i)].Cancel();
    deadlines[static_cast<size_t>(i)] =
        sim.Schedule(kDeadline, [&deadline_fires] { ++deadline_fires; });
    odsim::SimDuration period = odsim::SimDuration::Micros(
        1000 + jitter[static_cast<size_t>(i)].UniformInt(0, 19000));
    sim.Schedule(period, [&tick, i] { tick(i); });
  };
  for (int i = 0; i < kTimers; ++i) {
    sim.Schedule(odsim::SimDuration::Micros(jitter[static_cast<size_t>(i)]
                                                .UniformInt(0, 999)),
                 [&tick, i] { tick(i); });
  }

  auto start = std::chrono::steady_clock::now();
  sim.RunUntil(odsim::SimTime::Zero() + kHorizon);

  SimspeedCell cell;
  cell.wall_seconds = WallSecondsSince(start);
  cell.events = sim.events_processed();
  cell.sim_seconds = sim.Now().seconds();
  cell.checksum = Fold32(FnvMix(FnvMix(hash, cell.events), deadline_fires));
  return cell;
}

SimspeedCell RunMonitorGridCell(uint64_t seed) {
  constexpr int kDevices = 96;
  const odsim::SimDuration kHorizon = odsim::SimDuration::Seconds(600);

  odsim::Simulator sim;
  odutil::Rng seeder(seed);

  struct Device {
    std::unique_ptr<odpower::Laptop> laptop;
    std::unique_ptr<odscope::OnlineMonitor> monitor;
    bool bright = false;
  };
  std::vector<Device> devices(kDevices);
  for (int i = 0; i < kDevices; ++i) {
    Device& d = devices[static_cast<size_t>(i)];
    d.laptop = odpower::MakeThinkPad560X(&sim);
    d.monitor = std::make_unique<odscope::OnlineMonitor>(
        &sim, &d.laptop->machine(), odscope::OnlineMonitorConfig{},
        seeder.NextU64());
    d.monitor->Start();
  }

  // Staggered display toggles: every toggle is a component state change the
  // analytic accountant integrates over and the monitors must observe.
  std::function<void(int)> toggle = [&](int i) {
    Device& d = devices[static_cast<size_t>(i)];
    d.bright = !d.bright;
    d.laptop->display().Set(d.bright ? odpower::DisplayState::kBright
                                     : odpower::DisplayState::kDim);
    sim.Schedule(odsim::SimDuration::Millis(640), [&toggle, i] { toggle(i); });
  };
  for (int i = 0; i < kDevices; ++i) {
    sim.Schedule(odsim::SimDuration::Millis(640 * i / kDevices + 1),
                 [&toggle, i] { toggle(i); });
  }

  auto start = std::chrono::steady_clock::now();
  sim.RunUntil(odsim::SimTime::Zero() + kHorizon);
  for (Device& d : devices) {
    d.monitor->Stop();
  }

  SimspeedCell cell;
  cell.wall_seconds = WallSecondsSince(start);
  cell.events = sim.events_processed();
  cell.sim_seconds = sim.Now().seconds();
  uint64_t hash = 1469598103934665603ULL;
  for (Device& d : devices) {
    hash = FnvMix(hash, std::bit_cast<uint64_t>(d.monitor->measured_joules()));
  }
  cell.checksum = Fold32(FnvMix(hash, cell.events));
  return cell;
}

SimspeedCell RunFleetShapedCell(uint64_t seed, int clients) {
  FleetOptions options;
  options.clients = clients;
  options.seed = seed;
  options.service.cache_capacity = 512;

  auto start = std::chrono::steady_clock::now();
  FleetResult result = RunFleetScenario(options);

  SimspeedCell cell;
  cell.wall_seconds = WallSecondsSince(start);
  cell.events = result.events_processed;
  cell.sim_seconds = result.elapsed_seconds;
  uint64_t hash = 1469598103934665603ULL;
  hash = FnvMix(hash, cell.events);
  hash = FnvMix(hash, static_cast<uint64_t>(result.total_fetches));
  hash = FnvMix(hash, static_cast<uint64_t>(result.server_completed));
  hash = FnvMix(hash, static_cast<uint64_t>(result.goal_met_count));
  hash = FnvMix(hash, std::bit_cast<uint64_t>(result.mean_residual_joules));
  hash = FnvMix(hash, std::bit_cast<uint64_t>(result.mean_consumed_joules));
  cell.checksum = Fold32(hash);
  return cell;
}

}  // namespace odapps
