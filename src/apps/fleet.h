// Fleet-scale Odyssey: many devices, one distillation service.
//
// The paper's testbed is one client against dedicated servers.  This module
// asks the production question: N seeded devices — each with its own
// ThinkPad power model, WaveLAN link, viceroy, and GoalDirector — share one
// odserve::SharedService inside one simulator event loop.  As the client
// count grows the service queue lengthens, and because an RPC holds the
// client's wireless interface out of standby for the whole exchange, queue
// latency is paid in client energy: contention at the server drains
// batteries at the edge.  The distilled-content cache bends that curve —
// a cache hit skips the compute queue entirely, so the exchange costs only
// the transfer.
//
// Fleet devices are deliberately light: they submit no CPU work (the
// simulator models a single CPU, which devices must not share) and disable
// the link's interrupt-batch accounting for the same reason.  The fleet
// workload is the warden fetch path — the part of the testbed the shared
// service actually serves — driven by a per-device fidelity ladder under
// goal-directed adaptation.  Full-testbed fleets of one are wired through
// Viceroy::set_service_provider (see TestBed::Options::services) and
// reproduce the single-client goldens byte-identically.

#ifndef SRC_APPS_FLEET_H_
#define SRC_APPS_FLEET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/energy/goal_director.h"
#include "src/fault/fault_plan.h"
#include "src/odyssey/application.h"
#include "src/power/supply.h"
#include "src/power/thinkpad560x.h"
#include "src/serve/shared_service.h"
#include "src/sim/simulator.h"

namespace odapps {

// The fleet application's fidelity ladder, lowest first.  Odyssey fidelity
// semantics: lower fidelity means a smaller reply (cheaper for the client)
// but *more* server-side distillation work — degrading the fleet pushes
// load toward the server, the tension the content cache resolves.
struct FleetLevelSpec {
  const char* name;
  size_t reply_bytes;
  odsim::SimDuration distill_time;  // Server work before speed_factor.
};
const std::vector<FleetLevelSpec>& FleetLevels();

// A minimal adaptive application: the fidelity ladder above, no rendering.
// The device's fetch loop reads current_fidelity() for each fetch, so
// director upcalls (and overload clamps) take effect on the next fetch.
class FleetApp : public odyssey::AdaptiveApplication {
 public:
  explicit FleetApp(std::string name, int priority = 0);

  const std::string& name() const override { return name_; }
  int priority() const override { return priority_; }
  const odyssey::FidelitySpec& fidelity_spec() const override;
  int current_fidelity() const override { return level_; }
  void SetFidelity(int level) override { level_ = level; }

 private:
  std::string name_;
  int priority_;
  int level_;
};

struct FleetOptions {
  int clients = 32;
  uint64_t seed = 1;

  // Per-device battery goal.  initial_joules == 0 sizes the budget as
  // watts_budget * goal: between an uncontended device's draw and a
  // queue-bound one's, so attainment measures contention, not slack.
  odsim::SimDuration goal = odsim::SimDuration::Seconds(600);
  double initial_joules = 0.0;
  double watts_budget = 3.80;

  // The shared distillation service.  The default is provisioned so the
  // fleet saturates it in the hundreds of clients: batching keeps the
  // queue bounded by the number of distinct in-flight keys, and the cache
  // (when enabled by the caller) absorbs repeats outright.
  odserve::ServiceConfig service{.speed_factor = 4.0,
                                 .max_queue = 0,
                                 .batch_same_key = true,
                                 .cache_capacity = 0};

  // Device workload: one keyed fetch per period (per-device jitter), over
  // a shared object universe.  Keys are object id + fidelity level, so a
  // degraded fleet concentrates its keys — and its cache hits.
  odsim::SimDuration fetch_period = odsim::SimDuration::Seconds(5);
  int shared_objects = 256;
  size_t request_bytes = 256;
  // App-level flow control: a device with this many fetches outstanding
  // skips the period instead of piling more onto a slow service.
  int max_outstanding = 4;

  // Per-device behavior diversity: assign each device a scenario from the
  // named library by seed-indexed rotation (library[(seed + i) % size])
  // and gate its fetch loop on that behavior timeline — the device fetches
  // only where its scenario is active and has coverage, wrapping modulo
  // the scenario duration for runs longer than the scenario.  Off (the
  // default) keeps the uniform always-on fetch loop, byte-identical to the
  // pre-scenario fleet.
  bool scenario_diversity = false;

  // Per-device adaptation machinery, tuned down for scale (coarser monitor
  // and evaluation cadence than the single-client testbed; no timeline).
  odenergy::GoalDirectorConfig director{
      .evaluation_period = odsim::SimDuration::Seconds(1),
      .record_timeline = false};
  odsim::SimDuration monitor_period = odsim::SimDuration::Millis(500);

  // Disturbance plan (odfault grammar).  Stall windows apply to the shared
  // service — one wedged distiller degrades the whole fleet.  Device-level
  // kinds (link, loss, disk, telemetry) target device 0.
  odfault::FaultPlan fault_plan;

  // Optional per-device probe at 1 Hz — the chaos soak's hook for
  // invariants (per-device energy conservation).
  std::function<void(int device, odsim::SimTime now, odpower::Laptop&,
                     odpower::EnergySupply&)>
      device_probe;

  // Slack past the goal for final director evaluations.
  odsim::SimDuration run_slack = odsim::SimDuration::Seconds(2);
};

struct FleetDeviceResult {
  bool goal_met = false;
  double residual_joules = 0.0;
  double consumed_joules = 0.0;
  int final_fidelity = 0;
  int fetches = 0;
  int rejected_fetches = 0;
  int cache_hits = 0;
  int failed_fetches = 0;
  int overload_clamps = 0;
  // Fetch ticks suppressed by the device's behavior timeline (idle or
  // coverage-gap stretch); 0 unless scenario_diversity is on.
  int scenario_skipped_ticks = 0;
};

struct FleetResult {
  int clients = 0;
  double elapsed_seconds = 0.0;
  // Simulator events dispatched over the whole scenario (including settle):
  // the fleet-shaped cell of `odbench run simspeed` divides this by wall
  // time to track sim-core throughput.
  uint64_t events_processed = 0;

  // -- Fleet-side aggregates --------------------------------------------------
  int goal_met_count = 0;
  double goal_attainment = 0.0;  // Fraction of devices that met their goal.
  double mean_final_fidelity = 0.0;
  double mean_residual_joules = 0.0;
  double mean_consumed_joules = 0.0;
  int total_fetches = 0;
  int total_rejected_fetches = 0;
  int total_device_cache_hits = 0;
  int devices_overload_clamped = 0;
  int total_scenario_skipped_ticks = 0;

  // -- Server-side aggregates -------------------------------------------------
  int server_completed = 0;
  int server_rejected = 0;
  int server_cache_hits = 0;
  int server_batch_joins = 0;
  int server_cache_evictions = 0;
  double server_busy_seconds = 0.0;
  double server_utilization = 0.0;  // busy_seconds / elapsed.
  double cache_hit_rate = 0.0;      // hits / completed (hits count as completed).
  double queue_wait_mean_seconds = 0.0;
  double queue_wait_p50_seconds = 0.0;
  double queue_wait_p95_seconds = 0.0;

  std::vector<FleetDeviceResult> devices;
};

FleetResult RunFleetScenario(const FleetOptions& options);

}  // namespace odapps

#endif  // SRC_APPS_FLEET_H_
