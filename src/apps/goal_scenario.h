// Goal-directed adaptation scenarios (Section 5.2-5.4).
//
// The validation workload is the composite application (started every 25
// seconds) running concurrently with a looping background video.  Odyssey is
// given an initial energy value and a battery-duration goal; applications
// adapt under its direction until the goal is reached or the supply is
// exhausted.
//
// Note on the initial energy value: the paper uses 12,000 J, under which its
// client runs 19:27 at highest fidelity and 27:06 at lowest.  Our simulated
// client draws slightly more at full fidelity, so the default here is
// 13,500 J, chosen to preserve the property that the 20-minute goal requires
// adaptation while the 26-minute goal remains feasible.  EXPERIMENTS.md
// records the substitution.

#ifndef SRC_APPS_GOAL_SCENARIO_H_
#define SRC_APPS_GOAL_SCENARIO_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/testbed.h"
#include "src/energy/goal_director.h"
#include "src/fault/fault_plan.h"

namespace odapps {

struct GoalScenarioOptions {
  uint64_t seed = 1;
  double initial_joules = 13500.0;
  odsim::SimDuration goal = odsim::SimDuration::Seconds(1200);
  odenergy::GoalDirectorConfig director;

  // Workload: composite every `composite_period` + looping video
  // (Section 5.2), or the stochastic bursty workload (Section 5.4).
  bool bursty = false;
  odsim::SimDuration composite_period = odsim::SimDuration::Seconds(25);

  // Generic workload hook: when set, replaces the built-in workloads above.
  // Called after Settle() with the run's TestBed; drives whatever it likes
  // through the apps and returns a stop function the scenario invokes at
  // teardown.  The scenario layer (odscenario::ApplyScenarioWorkload)
  // installs its driver here — keeping goal_scenario free of a dependency
  // on the DSL.
  std::function<std::function<void()>(TestBed&)> workload_factory;

  // Optional mid-run goal revision (Section 5.4: +30 min at the end of the
  // first hour).
  std::optional<odsim::SimDuration> extend_at;
  odsim::SimDuration extend_by = odsim::SimDuration::Zero();

  // Ablation: invert application priorities (web degraded first, speech
  // last) to show what the paper's priority ordering buys.
  bool invert_priorities = false;

  // Use the SmartBattery gas-gauge monitor (1 Hz, quantized, with its own
  // standing draw) instead of the prototype's 10 Hz on-line multimeter —
  // the deployment path of Section 5.1.1.
  bool use_smart_battery = false;

  // Attach the self-constructive power model (LearnedEstimator) to the
  // director.  On its own this only observes; enabling
  // `director.drift_sentinel` arms the gauge cross-check, and
  // `director.learned_primary_when_converged` hands the residual estimate
  // over once the fit converges (the calibration-withheld deployment).
  bool learned_model = false;
  odpower::LearnedModelConfig learned_config;

  // Per-message loss probability on the wireless channel (failure
  // injection); retransmissions cost energy the director must absorb.
  double rpc_loss_probability = 0.0;

  // Disturbance plan (odfault grammar) armed at scenario start; empty =
  // a clean run, bit-identical to the pre-fault-support scenario.  When a
  // plan is armed the scenario also wires the graceful-degradation
  // machinery the fault scenario uses: bounded RPC retries plus a
  // per-call deadline (liveness under outages) and a bandwidth-health
  // monitor driving the viceroy's outage clamp.  Telemetry fault kinds
  // target the power monitor feeding the goal director.
  odfault::FaultPlan fault_plan;
  odsim::SimDuration rpc_deadline = odsim::SimDuration::Seconds(10);
  int max_retries = 5;
  odsim::SimDuration retry_timeout = odsim::SimDuration::Millis(500);
  // Consecutive healthy bandwidth estimates before the outage clamp lifts.
  int recovery_hysteresis = 3;

  // Optional 1 Hz probe while the scenario runs — the chaos soak's hook
  // for invariant checks (energy conservation, monotone drain, ...).
  std::function<void(TestBed&, odpower::EnergySupply&)> tick_probe;

  // Safety valve for infeasible configurations: the simulation aborts at
  // goal + this slack if neither completion condition fires.
  odsim::SimDuration max_overrun = odsim::SimDuration::Seconds(600);

  // Record the run's per-component power timeline (see
  // TestBed::Options::trace); returned in GoalScenarioResult::trace.  The
  // recorder observes draws passively — results are bit-identical either
  // way.
  bool trace = false;
};

struct GoalScenarioResult {
  bool goal_met = false;
  double residual_joules = 0.0;
  double elapsed_seconds = 0.0;
  // Adaptation count per application name ("Speech", "Video", "Map", "Web").
  std::map<std::string, int> adaptations;
  int total_adaptations = 0;
  // Supply/demand timeline (Figure 19, top graph).
  std::vector<odenergy::TimelinePoint> timeline;
  // Fidelity traces per application (Figure 19, bottom graphs).
  std::map<std::string, std::vector<odenergy::FidelityChange>> fidelity_traces;
  // Fidelity level at scenario end, per application.
  std::map<std::string, int> final_fidelity;
  // When the director reported the goal infeasible (Section 5.1.1), if it
  // did — typically well before the supply actually runs out.
  std::optional<double> infeasibility_detected_seconds;

  // -- Disturbance / controller-health record -------------------------------

  odenergy::GoalOutcome outcome = odenergy::GoalOutcome::kRunning;
  // Residual as the director believed it at scenario end (vs. the true
  // residual_joules above; the gap is the telemetry-induced estimate error).
  double estimated_residual_joules = 0.0;
  odenergy::ControllerHealth final_health = odenergy::ControllerHealth::kHealthy;
  double safe_mode_seconds = 0.0;
  int safe_mode_entries = 0;
  int invalid_samples = 0;
  int telemetry_gaps = 0;
  int outage_clamps = 0;

  // -- Learned-model / drift-sentinel record (set when learned_model) -------

  double learned_joules = 0.0;
  bool learned_converged = false;
  double learned_confidence = 0.0;
  // The calibration-withheld handoff fired: the learned model is the
  // primary residual estimator from that point on.
  bool learned_primary_active = false;
  // Excitation-weighted coefficient error vs. the calibration table.
  double coefficient_recovery_error = 1.0;
  std::vector<odenergy::LearnedEstimator::CoefficientReport> coefficient_report;
  int drift_entries = 0;
  double drift_seconds = 0.0;
  double drift_correction_joules = 0.0;
  std::optional<double> first_drift_detected_seconds;

  // Per-component power timeline over [scenario start, end]; set only when
  // GoalScenarioOptions::trace was enabled.
  std::shared_ptr<const odtrace::PowerTrace> trace;
  // Ground-truth energy drawn over the same window, from the analytic
  // accounting (the trace integral must reproduce it; residual_joules
  // additionally reflects the supply model).
  double accounted_joules = 0.0;
};

GoalScenarioResult RunGoalScenario(const GoalScenarioOptions& options);

// Measures the workload's untethered lifetime (seconds) on `initial_joules`
// when pinned at the given fidelity level for every application (no
// adaptation).  Used to report the paper's "19:27 at highest fidelity,
// 27:06 at lowest" framing numbers.  A non-empty `fault_plan` disturbs the
// run (telemetry kinds hit a monitor nothing consumes; lifetime is decided
// by the true supply).
double MeasurePinnedLifetime(double initial_joules, bool lowest_fidelity,
                             uint64_t seed,
                             const odfault::FaultPlan& fault_plan = {});

}  // namespace odapps

#endif  // SRC_APPS_GOAL_SCENARIO_H_
