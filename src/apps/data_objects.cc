#include "src/apps/data_objects.h"

#include "src/util/check.h"

namespace odapps {

const VideoTrackSpec& VideoClip::track(VideoTrack t) const {
  switch (t) {
    case VideoTrack::kBaseline:
      return baseline;
    case VideoTrack::kPremiereB:
      return premiere_b;
    case VideoTrack::kPremiereC:
      return premiere_c;
  }
  OD_CHECK(false);
  return baseline;
}

const std::array<VideoClip, 4>& StandardVideoClips() {
  // Bitrate and decode cost fall with lossy compression; per-clip variation
  // reflects content complexity.
  static const std::array<VideoClip, 4> kClips = {{
      {"Video 1", 127.0, {1.70e6, 0.39}, {1.20e6, 0.27}, {0.85e6, 0.16}},
      {"Video 2", 165.0, {1.60e6, 0.37}, {1.12e6, 0.26}, {0.80e6, 0.15}},
      {"Video 3", 198.0, {1.75e6, 0.40}, {1.25e6, 0.28}, {0.88e6, 0.17}},
      {"Video 4", 226.0, {1.55e6, 0.36}, {1.08e6, 0.25}, {0.78e6, 0.15}},
  }};
  return kClips;
}

oddisplay::Rect VideoWindow(double scale) {
  OD_CHECK(scale > 0.0 && scale <= 1.0);
  // Baseline window: 0.40 x 0.40 of the screen, near the top-left corner —
  // inside one zone of the 4-zone display, two zones of the 8-zone display.
  return oddisplay::Rect{0.05, 0.05, 0.40 * scale, 0.40 * scale};
}

const std::array<Utterance, 4>& StandardUtterances() {
  static const std::array<Utterance, 4> kUtterances = {{
      {"Utterance 1", 1.2},
      {"Utterance 2", 2.8},
      {"Utterance 3", 4.5},
      {"Utterance 4", 6.8},
  }};
  return kUtterances;
}

const std::array<MapObject, 4>& StandardMaps() {
  // Filter effectiveness varies with how much of a city's data is minor or
  // secondary roads — hence the wide per-object savings spread in Figure 10.
  static const std::array<MapObject, 4> kMaps = {{
      {"San Jose", 1500000, 825000, 450000, 495000, 150000},
      {"Allentown", 450000, 383000, 195000, 203000, 75000},
      {"Boston", 1200000, 540000, 264000, 360000, 108000},
      {"Pittsburgh", 800000, 480000, 280000, 320000, 120000},
  }};
  return kMaps;
}

oddisplay::Rect MapWindowFull() {
  // Spans all four zones of the 4-zone display and six of the eight.
  return oddisplay::Rect{0.0, 0.0, 0.74, 1.0};
}

oddisplay::Rect MapWindowCropped() {
  // Spans two zones of the 4-zone display and three of the eight.
  return oddisplay::Rect{0.0, 0.0, 0.60, 0.48};
}

const std::array<WebImage, 4>& StandardWebImages() {
  static const std::array<WebImage, 4> kImages = {{
      {"Image 1", 175000},
      {"Image 2", 70000},
      {"Image 3", 12000},
      {"Image 4", 110},
  }};
  return kImages;
}

}  // namespace odapps
