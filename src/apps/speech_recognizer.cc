#include "src/apps/speech_recognizer.h"

#include <memory>
#include <utility>

#include "src/power/power_manager.h"
#include "src/util/check.h"

namespace odapps {

SpeechRecognizer::SpeechRecognizer(odyssey::Viceroy* viceroy, odutil::Rng* rng,
                                   int priority)
    : viceroy_(viceroy),
      rng_(rng),
      priority_(priority),
      spec_({"Reduced model", "Full model"}),
      fidelity_(spec_.highest()) {
  OD_CHECK(viceroy != nullptr);
  OD_CHECK(rng != nullptr);
  odsim::Simulator* sim = viceroy_->sim();
  warden_ = static_cast<SpeechWarden*>(viceroy_->FindWarden("speech"));
  if (warden_ == nullptr) {
    warden_ = static_cast<SpeechWarden*>(
        viceroy_->RegisterWarden(std::make_unique<SpeechWarden>(sim)));
  }
  janus_pid_ = sim->processes().RegisterProcess("Janus");
  frontend_proc_ = sim->processes().RegisterProcedure("_GenerateWaveform");
  search_proc_ = sim->processes().RegisterProcedure("_ViterbiSearch");
  viceroy_->RegisterApplication(this);
}

SpeechRecognizer::~SpeechRecognizer() { viceroy_->UnregisterApplication(this); }

void SpeechRecognizer::Recognize(const Utterance& utterance, odsim::EventFn on_done) {
  OD_CHECK(!busy_);
  busy_ = true;
  double seconds = utterance.duration_seconds;

  // Front end: generate the waveform.
  double frontend = kSpeechCal.frontend_rtf * seconds * rng_->Uniform(0.97, 1.03);
  viceroy_->sim()->SubmitWork(
      janus_pid_, frontend_proc_, odsim::SimDuration::Seconds(frontend),
      [this, seconds, on_done = std::move(on_done)]() mutable {
        switch (mode_) {
          case SpeechMode::kLocal:
            RunLocal(seconds, std::move(on_done));
            break;
          case SpeechMode::kRemote:
            RunRemote(seconds, std::move(on_done));
            break;
          case SpeechMode::kHybrid:
            RunHybrid(seconds, std::move(on_done));
            break;
        }
      });
}

void SpeechRecognizer::RunLocal(double seconds, odsim::EventFn on_done) {
  double rtf =
      reduced_model() ? kSpeechCal.local_rtf_reduced : kSpeechCal.local_rtf_full;
  double work = rtf * seconds * rng_->Uniform(0.97, 1.03);

  bool pages = vocab_paging_ && !reduced_model();
  if (!pages) {
    viceroy_->sim()->SubmitWork(janus_pid_, search_proc_,
                                odsim::SimDuration::Seconds(work),
                                [this, on_done = std::move(on_done)]() mutable {
                                  Finish(std::move(on_done));
                                });
    return;
  }

  // Paging overlaps the search: recognition completes when both the CPU
  // work and the disk traffic have finished.
  auto remaining = std::make_shared<int>(2);
  auto done_fn = std::make_shared<odsim::EventFn>(std::move(on_done));
  auto join = [this, remaining, done_fn] {
    if (--*remaining == 0) {
      Finish(std::move(*done_fn));
    }
  };
  viceroy_->sim()->SubmitWork(janus_pid_, search_proc_,
                              odsim::SimDuration::Seconds(work), join);
  viceroy_->power_manager()->AccessDisk(
      odsim::SimDuration::Seconds(work * kSpeechCal.full_vocab_disk_fraction),
      join);
}

void SpeechRecognizer::RunRemote(double seconds, odsim::EventFn on_done) {
  double rtf =
      reduced_model() ? kSpeechCal.server_rtf_reduced : kSpeechCal.server_rtf_full;
  auto waveform =
      static_cast<size_t>(kSpeechCal.waveform_bytes_per_second * seconds);
  double server = rtf * seconds * rng_->Uniform(0.95, 1.05);
  warden_->RemoteRecognize(waveform, kSpeechCal.reply_bytes,
                           odsim::SimDuration::Seconds(server),
                           [this, on_done = std::move(on_done)]() mutable {
                             Finish(std::move(on_done));
                           });
}

void SpeechRecognizer::RunHybrid(double seconds, odsim::EventFn on_done) {
  double local_rtf = reduced_model() ? kSpeechCal.hybrid_local_rtf_reduced
                                     : kSpeechCal.hybrid_local_rtf_full;
  double server_rtf = reduced_model() ? kSpeechCal.hybrid_server_rtf_reduced
                                      : kSpeechCal.hybrid_server_rtf_full;
  double phase1 = local_rtf * seconds * rng_->Uniform(0.97, 1.03);
  auto compact = static_cast<size_t>(kSpeechCal.waveform_bytes_per_second * seconds /
                                     kSpeechCal.hybrid_compression);
  double server = server_rtf * seconds * rng_->Uniform(0.95, 1.05);
  viceroy_->sim()->SubmitWork(
      janus_pid_, search_proc_, odsim::SimDuration::Seconds(phase1),
      [this, compact, server, on_done = std::move(on_done)]() mutable {
        warden_->RemoteRecognize(compact, kSpeechCal.reply_bytes,
                                 odsim::SimDuration::Seconds(server),
                                 [this, on_done = std::move(on_done)]() mutable {
                                   Finish(std::move(on_done));
                                 });
      });
}

void SpeechRecognizer::Finish(odsim::EventFn on_done) {
  busy_ = false;
  if (on_done) {
    on_done();
  }
}

}  // namespace odapps
