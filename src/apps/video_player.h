// Adaptive video player (Section 3.3) — the paper's modified xanim.
//
// Fetches video from a server through the video warden and displays it.
// Fidelity dimensions: the level of lossy compression used to encode the
// clip (multiple tracks per clip on the server), the size of the display
// window, and — on the lowest rung only — frame rate and backlight level.
// The goal-directed ladder, lowest to highest: ambient (Premiere-C, quarter
// window, half rate, dimmed backlight), Premiere-C at half window,
// Premiere-C, Premiere-B, baseline encoding.

#ifndef SRC_APPS_VIDEO_PLAYER_H_
#define SRC_APPS_VIDEO_PLAYER_H_

#include <optional>
#include <string>

#include "src/apps/calibration.h"
#include "src/apps/data_objects.h"
#include "src/apps/display_arbiter.h"
#include "src/apps/wardens.h"
#include "src/display/zoned.h"
#include "src/odyssey/application.h"
#include "src/odyssey/viceroy.h"
#include "src/util/rng.h"

namespace odapps {

class VideoPlayer : public odyssey::AdaptiveApplication {
 public:
  struct Config {
    VideoTrack track = VideoTrack::kBaseline;
    double window_scale = 1.0;
    // Frame-rate scale: 0.5 halves delivered bitrate and decode/render work.
    double rate_scale = 1.0;
    // Ambient mode: the player accepts a dimmed backlight (lowest rung of
    // the goal-directed ladder).
    bool dim_display = false;
  };

  VideoPlayer(odyssey::Viceroy* viceroy, DisplayArbiter* arbiter, odutil::Rng* rng,
              int priority = 1);
  ~VideoPlayer() override;

  // -- AdaptiveApplication ---------------------------------------------------
  const std::string& name() const override { return name_; }
  int priority() const override { return priority_; }

  // Lets experiments reorder adaptation (the priority-ablation bench); the
  // paper plans dynamic user-controlled priorities as future work.
  void set_priority(int priority) { priority_ = priority; }
  const odyssey::FidelitySpec& fidelity_spec() const override { return spec_; }
  int current_fidelity() const override { return fidelity_; }
  void SetFidelity(int level) override;

  // -- Playback --------------------------------------------------------------

  // Plays the whole clip; `on_done` fires after the final frame.
  void PlayClip(const VideoClip& clip, odsim::EventFn on_done);

  // Plays only the first `duration` of the clip.
  void PlaySegment(const VideoClip& clip, odsim::SimDuration duration,
                   odsim::EventFn on_done);

  // Loops the clip until StopLooping() — the background newsfeed of
  // Section 3.7.
  void PlayLooping(const VideoClip& clip);
  void StopLooping();

  bool playing() const { return playing_; }

  // Pins track/window regardless of the fidelity ladder (used by the
  // Figure 6 sweeps); cleared with ClearConfigOverride().
  void SetConfigOverride(const Config& config);
  void ClearConfigOverride();

  Config EffectiveConfig() const;

  // Current playback window (normalized screen rect) for zoned backlighting.
  oddisplay::Rect window() const;

  // If set, the controller is updated whenever the window geometry changes.
  void set_zoned_controller(oddisplay::ZonedBacklightController* controller);

 private:
  void PlayChunk();
  void FinishPlayback();
  void UpdateZones();
  DisplayNeed CurrentNeed() const;
  void ReacquireDisplay();

  odyssey::Viceroy* viceroy_;
  DisplayArbiter* arbiter_;
  odutil::Rng* rng_;
  std::string name_ = "Video";
  int priority_;
  odyssey::FidelitySpec spec_;
  int fidelity_;
  std::optional<Config> override_;

  VideoWarden* warden_;
  odsim::ProcessId xanim_pid_;
  odsim::ProcedureId decode_proc_;
  odsim::ProcessId xserver_pid_;
  odsim::ProcedureId render_proc_;
  odsim::ProcessId odyssey_pid_;
  odsim::ProcessId interrupt_pid_;

  const VideoClip* clip_ = nullptr;
  double position_seconds_ = 0.0;
  double segment_seconds_ = 0.0;
  bool playing_ = false;
  bool looping_ = false;
  DisplayNeed held_need_ = DisplayNeed::kBright;
  // Chunks whose decode/render pipeline has not finished.  Playback is
  // paced: if the previous chunk is still in the pipeline (CPU contention),
  // the next chunk's frames are dropped rather than queued.
  int outstanding_chunks_ = 0;
  int64_t chunks_played_ = 0;
  int64_t chunks_dropped_ = 0;

 public:
  int64_t chunks_played() const { return chunks_played_; }
  int64_t chunks_dropped() const { return chunks_dropped_; }

 private:
  odsim::EventFn on_done_;
  odsim::EventHandle next_chunk_;
  oddisplay::ZonedBacklightController* zoned_ = nullptr;
};

}  // namespace odapps

#endif  // SRC_APPS_VIDEO_PLAYER_H_
