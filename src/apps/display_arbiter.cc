#include "src/apps/display_arbiter.h"

#include "src/util/check.h"

namespace odapps {

DisplayArbiter::DisplayArbiter(odpower::PowerManager* pm) : pm_(pm) {
  OD_CHECK(pm != nullptr);
}

void DisplayArbiter::Acquire(DisplayNeed need) {
  if (need == DisplayNeed::kBright) {
    ++bright_holders_;
  } else {
    ++dim_holders_;
  }
  Apply();
}

void DisplayArbiter::Release(DisplayNeed need) {
  if (need == DisplayNeed::kBright) {
    OD_CHECK(bright_holders_ > 0);
    --bright_holders_;
  } else {
    OD_CHECK(dim_holders_ > 0);
    --dim_holders_;
  }
  Apply();
}

void DisplayArbiter::set_off_when_idle(bool off) {
  off_when_idle_ = off;
  Apply();
}

void DisplayArbiter::Apply() {
  if (bright_holders_ > 0) {
    pm_->SetDisplay(odpower::DisplayState::kBright);
  } else if (dim_holders_ > 0) {
    pm_->SetDisplay(odpower::DisplayState::kDim);
  } else {
    pm_->SetDisplay(off_when_idle_ ? odpower::DisplayState::kOff
                                   : odpower::DisplayState::kBright);
  }
}

}  // namespace odapps
