// Adaptive speech recognizer (Section 3.4) — a front end plus the Janus
// recognition engine, running locally, remotely, or in hybrid mode.
//
// Fidelity is lowered by using a reduced vocabulary and a less complex
// acoustic model (halving local recognition time).  The execution site is a
// separate configuration axis: local recognition is unavoidable when
// disconnected; remote recognition trades network energy for server cycles;
// hybrid mode runs the first recognition phase locally as a type-specific
// 5x compressor and ships the compact intermediate representation.

#ifndef SRC_APPS_SPEECH_RECOGNIZER_H_
#define SRC_APPS_SPEECH_RECOGNIZER_H_

#include <string>

#include "src/apps/calibration.h"
#include "src/apps/data_objects.h"
#include "src/apps/wardens.h"
#include "src/odyssey/application.h"
#include "src/odyssey/viceroy.h"
#include "src/util/rng.h"

namespace odapps {

enum class SpeechMode {
  kLocal,
  kRemote,
  kHybrid,
};

class SpeechRecognizer : public odyssey::AdaptiveApplication {
 public:
  SpeechRecognizer(odyssey::Viceroy* viceroy, odutil::Rng* rng, int priority = 0);
  ~SpeechRecognizer() override;

  // -- AdaptiveApplication ---------------------------------------------------
  const std::string& name() const override { return name_; }
  int priority() const override { return priority_; }

  // Lets experiments reorder adaptation (the priority-ablation bench); the
  // paper plans dynamic user-controlled priorities as future work.
  void set_priority(int priority) { priority_ = priority; }
  const odyssey::FidelitySpec& fidelity_spec() const override { return spec_; }
  int current_fidelity() const override { return fidelity_; }
  void SetFidelity(int level) override { fidelity_ = level; }

  // Execution site; orthogonal to the fidelity ladder.
  void set_mode(SpeechMode mode) { mode_ = mode; }
  SpeechMode mode() const { return mode_; }

  bool reduced_model() const { return fidelity_ == 0; }

  // When enabled, full-model local recognition pages the vocabulary from
  // disk (Section 3.4's "more complex recognition tasks may trigger disk
  // activity"), spinning the disk up if power management had it in standby.
  // Off by default: the paper's measured configuration fits in memory.
  void set_vocab_paging(bool enabled) { vocab_paging_ = enabled; }
  bool vocab_paging() const { return vocab_paging_; }

  // Recognizes one utterance; `on_done` fires when text is available.
  void Recognize(const Utterance& utterance, odsim::EventFn on_done);

  bool busy() const { return busy_; }

 private:
  void RunLocal(double seconds, odsim::EventFn on_done);
  void RunRemote(double seconds, odsim::EventFn on_done);
  void RunHybrid(double seconds, odsim::EventFn on_done);
  void Finish(odsim::EventFn on_done);

  odyssey::Viceroy* viceroy_;
  odutil::Rng* rng_;
  std::string name_ = "Speech";
  int priority_;
  odyssey::FidelitySpec spec_;
  int fidelity_;
  SpeechMode mode_ = SpeechMode::kLocal;
  bool vocab_paging_ = false;
  bool busy_ = false;

  SpeechWarden* warden_;
  odsim::ProcessId janus_pid_;
  odsim::ProcedureId frontend_proc_;
  odsim::ProcedureId search_proc_;
};

}  // namespace odapps

#endif  // SRC_APPS_SPEECH_RECOGNIZER_H_
