// Simulator-core speed workloads.
//
// Fleet scale (src/apps/fleet.h) multiplies event counts by orders of
// magnitude, making the event queue, the power integrator, and callback
// dispatch the hot path.  These cells are the fixed, seeded workloads behind
// `odbench run simspeed`: each returns the deterministic facts (event count,
// simulated seconds, a workload checksum) plus the measured wall time, from
// which the experiment derives events/sec and sim-seconds-per-wall-second.
//
// Everything except `wall_seconds` must be byte-identical for a fixed seed,
// on any machine, at any --jobs: the checksum is the determinism signature a
// regression test replays, and the wall-derived rates are what the committed
// BENCH_simspeed.json trajectory tracks across PRs.

#ifndef SRC_APPS_SIMSPEED_H_
#define SRC_APPS_SIMSPEED_H_

#include <cstdint>

namespace odapps {

struct SimspeedCell {
  // Deterministic for a fixed seed.
  uint64_t events = 0;        // Simulator events dispatched.
  double sim_seconds = 0.0;   // Simulated time covered.
  uint32_t checksum = 0;      // Folded FNV-1a signature of the replay.
  // Measured; never recorded in artifacts (it would break --jobs
  // byte-identity), only in the BENCH trajectory and on stdout.
  double wall_seconds = 0.0;
};

// Pure event-queue churn: 512 self-rescheduling timers with seeded jitter,
// each push also arming a deadline timer that is almost always cancelled
// before it fires — the RPC-deadline pattern that grows the pending set
// with lazily-cancelled entries.
SimspeedCell RunQueueChurnCell(uint64_t seed);

// The power/energy layer: 96 ThinkPad machines, each with a noisy online
// monitor at 100 ms and a display toggling bright/dim, so every sample
// crosses Machine::TotalPower and every toggle crosses the analytic
// accountant.
SimspeedCell RunMonitorGridCell(uint64_t seed);

// The fleet-shaped cell: RunFleetScenario with `clients` devices and the
// distilled-content cache on — the same shape as the fleet_sweep cells that
// motivated this benchmark.
SimspeedCell RunFleetShapedCell(uint64_t seed, int clients = 2000);

}  // namespace odapps

#endif  // SRC_APPS_SIMSPEED_H_
