#include "src/apps/bursty.h"

#include <algorithm>

#include "src/util/check.h"

namespace odapps {

namespace {
constexpr int kVideo = 0;
constexpr int kSpeech = 1;
constexpr int kWeb = 2;
constexpr int kMap = 3;
}  // namespace

BurstyWorkload::BurstyWorkload(odsim::Simulator* sim, VideoPlayer* video,
                               SpeechRecognizer* speech, WebBrowser* web,
                               MapViewer* map, odutil::Rng* rng,
                               const Config& config)
    : sim_(sim),
      video_(video),
      speech_(speech),
      web_(web),
      map_(map),
      rng_(rng),
      config_(config) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(video != nullptr);
  OD_CHECK(speech != nullptr);
  OD_CHECK(web != nullptr);
  OD_CHECK(map != nullptr);
  OD_CHECK(rng != nullptr);
}

void BurstyWorkload::Start() {
  OD_CHECK(!running_);
  running_ = true;
  minute_index_ = 0;
  recorded_.minutes.clear();
  if (config_.replay.empty()) {
    for (bool& a : active_) {
      a = rng_->Bernoulli(0.5);
    }
  }
  MinuteTick();
}

void BurstyWorkload::Stop() {
  running_ = false;
  tick_.Cancel();
}

void BurstyWorkload::MinuteTick() {
  if (!running_) {
    return;
  }
  odsim::SimTime now = sim_->Now();
  if (!config_.replay.empty()) {
    size_t index = std::min(minute_index_, config_.replay.minutes.size() - 1);
    active_ = config_.replay.minutes[index];
  } else {
    for (bool& a : active_) {
      if (rng_->Bernoulli(config_.switch_probability)) {
        a = !a;
      }
    }
  }
  for (int i = 0; i < 4; ++i) {
    if (active_[static_cast<size_t>(i)]) {
      active_until_[static_cast<size_t>(i)] = now + config_.minute;
    }
  }
  recorded_.minutes.push_back(active_);
  ++minute_index_;
  if (video_active()) {
    DriveVideo();
  }
  if (speech_active() && !chain_running_[kSpeech]) {
    DriveSpeech(active_until_[kSpeech]);
  }
  if (web_active() && !chain_running_[kWeb]) {
    DriveWeb(active_until_[kWeb]);
  }
  if (map_active() && !chain_running_[kMap]) {
    DriveMap(active_until_[kMap]);
  }
  tick_ = sim_->Schedule(config_.minute, [this] { MinuteTick(); });
}

void BurstyWorkload::DriveVideo() {
  if (!running_ || video_->playing() || chain_running_[kVideo]) {
    return;
  }
  if (sim_->Now() >= active_until_[kVideo]) {
    return;
  }
  chain_running_[kVideo] = true;
  const auto& clips = StandardVideoClips();
  const VideoClip& clip =
      clips[static_cast<size_t>(next_object_[kVideo]++ % 4)];
  odsim::SimDuration remaining = active_until_[kVideo] - sim_->Now();
  video_->PlaySegment(clip, remaining, [this] {
    chain_running_[kVideo] = false;
    DriveVideo();
  });
}

void BurstyWorkload::DriveSpeech(odsim::SimTime /*active_until*/) {
  if (!running_ || sim_->Now() >= active_until_[kSpeech] || speech_->busy()) {
    chain_running_[kSpeech] = false;
    return;
  }
  chain_running_[kSpeech] = true;
  odsim::SimTime unit_start = sim_->Now();
  odsim::SimDuration spacing = odsim::SimDuration::Seconds(
      60.0 / config_.speech_utterances_per_minute);
  const auto& utterances = StandardUtterances();
  const Utterance& utterance =
      utterances[static_cast<size_t>(next_object_[kSpeech]++ % 4)];
  speech_->Recognize(utterance, [this, unit_start, spacing] {
    odsim::SimTime next = unit_start + spacing;
    if (next <= sim_->Now()) {
      DriveSpeech(active_until_[kSpeech]);
    } else {
      sim_->ScheduleAt(next, [this] { DriveSpeech(active_until_[kSpeech]); });
    }
  });
}

void BurstyWorkload::DriveWeb(odsim::SimTime /*active_until*/) {
  if (!running_ || sim_->Now() >= active_until_[kWeb] || web_->busy()) {
    chain_running_[kWeb] = false;
    return;
  }
  chain_running_[kWeb] = true;
  odsim::SimTime unit_start = sim_->Now();
  odsim::SimDuration spacing =
      odsim::SimDuration::Seconds(60.0 / config_.pages_per_minute);
  const auto& images = StandardWebImages();
  const WebImage& image = images[static_cast<size_t>(next_object_[kWeb]++ % 4)];
  web_->BrowsePage(image, [this, unit_start, spacing] {
    odsim::SimTime next = unit_start + spacing;
    if (next <= sim_->Now()) {
      DriveWeb(active_until_[kWeb]);
    } else {
      sim_->ScheduleAt(next, [this] { DriveWeb(active_until_[kWeb]); });
    }
  });
}

void BurstyWorkload::DriveMap(odsim::SimTime /*active_until*/) {
  if (!running_ || sim_->Now() >= active_until_[kMap] || map_->busy()) {
    chain_running_[kMap] = false;
    return;
  }
  chain_running_[kMap] = true;
  odsim::SimTime unit_start = sim_->Now();
  odsim::SimDuration spacing =
      odsim::SimDuration::Seconds(60.0 / config_.maps_per_minute);
  const auto& maps = StandardMaps();
  const MapObject& map = maps[static_cast<size_t>(next_object_[kMap]++ % 4)];
  map_->ViewMap(map, [this, unit_start, spacing] {
    odsim::SimTime next = unit_start + spacing;
    if (next <= sim_->Now()) {
      DriveMap(active_until_[kMap]);
    } else {
      sim_->ScheduleAt(next, [this] { DriveMap(active_until_[kMap]); });
    }
  });
}

}  // namespace odapps
