// Canonical experiment runners for the paper's evaluation (Sections 3-4).
//
// Each runner builds a fresh TestBed (so runs are independent, like the
// paper's separate trials), lets the hardware settle into its resting state,
// executes one workload, and returns the measurement.  Both the bench
// binaries and the reproduction tests drive these, so the numbers in
// EXPERIMENTS.md and the asserted bands come from identical code paths.

#ifndef SRC_APPS_EXPERIMENTS_H_
#define SRC_APPS_EXPERIMENTS_H_

#include "src/apps/data_objects.h"
#include "src/apps/map_viewer.h"
#include "src/apps/speech_recognizer.h"
#include "src/apps/testbed.h"
#include "src/apps/video_player.h"
#include "src/apps/web_browser.h"

namespace odapps {

// Lets power-managed devices reach their resting states (disk spin-down
// takes 10 s) before measurement begins.
void Settle(TestBed& bed);

// -- Section 3.3: video ------------------------------------------------------

// `trace` records the measured window's per-component power timeline into
// Measurement::trace (see TestBed::Options::trace); the energy numbers are
// bit-identical either way.
TestBed::Measurement RunVideoExperiment(const VideoClip& clip, VideoTrack track,
                                        double window_scale, bool hw_pm,
                                        uint64_t seed, bool trace = false);

// -- Section 3.4: speech -----------------------------------------------------

TestBed::Measurement RunSpeechExperiment(const Utterance& utterance,
                                         SpeechMode mode, bool reduced_model,
                                         bool hw_pm, uint64_t seed);

// -- Section 3.5: maps -------------------------------------------------------

TestBed::Measurement RunMapExperiment(const MapObject& map, MapFidelity fidelity,
                                      double think_seconds, bool hw_pm,
                                      uint64_t seed);

// -- Section 3.6: web --------------------------------------------------------

TestBed::Measurement RunWebExperiment(const WebImage& image, WebFidelity fidelity,
                                      double think_seconds, bool hw_pm,
                                      uint64_t seed, bool trace = false);

// -- Section 3.7: concurrency ------------------------------------------------

// Runs `iterations` of the composite application, optionally with the
// background video player looping Video 1.  `lowest_fidelity` pins every
// application to its lowest level.
TestBed::Measurement RunCompositeExperiment(int iterations, bool lowest_fidelity,
                                            bool hw_pm, bool with_video,
                                            uint64_t seed);

// -- Section 4: zoned backlighting -------------------------------------------

// Zone layouts for the projection: 0 = no zoning, 4, or 8 zones.
TestBed::Measurement RunZonedVideoExperiment(const VideoClip& clip,
                                             VideoTrack track, double window_scale,
                                             int zones, uint64_t seed);

TestBed::Measurement RunZonedMapExperiment(const MapObject& map,
                                           MapFidelity fidelity,
                                           double think_seconds, int zones,
                                           uint64_t seed);

}  // namespace odapps

#endif  // SRC_APPS_EXPERIMENTS_H_
