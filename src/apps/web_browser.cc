#include "src/apps/web_browser.h"

#include <memory>
#include <utility>

#include "src/util/check.h"

namespace odapps {

WebBrowser::WebBrowser(odyssey::Viceroy* viceroy, DisplayArbiter* arbiter,
                       odutil::Rng* rng, int priority)
    : viceroy_(viceroy),
      arbiter_(arbiter),
      rng_(rng),
      priority_(priority),
      spec_({"JPEG-5", "JPEG-25", "JPEG-50", "JPEG-75", "Original"}),
      fidelity_(spec_.highest()) {
  OD_CHECK(viceroy != nullptr);
  OD_CHECK(arbiter != nullptr);
  OD_CHECK(rng != nullptr);
  odsim::Simulator* sim = viceroy_->sim();
  warden_ = static_cast<WebWarden*>(viceroy_->FindWarden("web"));
  if (warden_ == nullptr) {
    warden_ = static_cast<WebWarden*>(
        viceroy_->RegisterWarden(std::make_unique<WebWarden>(sim)));
  }
  netscape_pid_ = sim->processes().RegisterProcess("Netscape");
  layout_proc_ = sim->processes().RegisterProcedure("_LayoutDocument");
  proxy_pid_ = sim->processes().RegisterProcess("Proxy");
  proxy_proc_ = sim->processes().RegisterProcedure("_ProxyRelay");
  xserver_pid_ = sim->processes().RegisterProcess("X Server");
  draw_proc_ = sim->processes().RegisterProcedure("_XPutImage");
  viceroy_->RegisterApplication(this);
}

WebBrowser::~WebBrowser() { viceroy_->UnregisterApplication(this); }

void WebBrowser::SetFidelity(int level) {
  OD_CHECK(spec_.valid(level));
  fidelity_ = level;
}

size_t WebBrowser::BytesAtFidelity(const WebImage& image, WebFidelity fidelity) {
  auto scaled = [&](double scale) {
    return static_cast<size_t>(static_cast<double>(image.gif_bytes) * scale);
  };
  switch (fidelity) {
    case WebFidelity::kJpeg5:
      return scaled(kWebCal.jpeg5_scale);
    case WebFidelity::kJpeg25:
      return scaled(kWebCal.jpeg25_scale);
    case WebFidelity::kJpeg50:
      return scaled(kWebCal.jpeg50_scale);
    case WebFidelity::kJpeg75:
      return scaled(kWebCal.jpeg75_scale);
    case WebFidelity::kOriginal:
      return image.gif_bytes;
  }
  OD_CHECK(false);
  return 0;
}

void WebBrowser::BrowsePage(const WebImage& image, odsim::EventFn on_done) {
  OD_CHECK(!busy_);
  busy_ = true;
  arbiter_->Acquire();

  size_t bytes = kWebCal.html_bytes + BytesAtFidelity(image, web_fidelity());
  // The distillation server only transcodes when fidelity is lowered.
  double distill = 0.0;
  if (web_fidelity() != WebFidelity::kOriginal) {
    double mb = static_cast<double>(image.gif_bytes) / 1.0e6;
    distill = kWebCal.distill_seconds_per_mb * mb * rng_->Uniform(0.85, 1.15);
  }
  odsim::Simulator* sim = viceroy_->sim();

  warden_->FetchImageWithStatus(
      kWebCal.request_bytes, bytes, odsim::SimDuration::Seconds(distill),
      [this, bytes, sim,
       on_done = std::move(on_done)](odnet::RpcStatus status) mutable {
        size_t rendered_bytes = bytes;
        if (status != odnet::RpcStatus::kOk) {
          // The image never arrived; lay out the text-only page so the
          // browsing loop keeps moving instead of wedging on a dead link.
          ++pages_degraded_;
          rendered_bytes = kWebCal.html_bytes;
        }
        double mb = static_cast<double>(rendered_bytes) / 1.0e6;
        double render =
            kWebCal.render_cpu_seconds_per_mb * mb * rng_->Uniform(0.97, 1.03);
        // The proxy relays, Netscape lays out, the X server paints.
        sim->SubmitWork(
            proxy_pid_, proxy_proc_, odsim::SimDuration::Seconds(render * 0.2),
            [this, sim, render, on_done = std::move(on_done)]() mutable {
              sim->SubmitWork(
                  netscape_pid_, layout_proc_,
                  odsim::SimDuration::Seconds(render * 0.5),
                  [this, sim, render, on_done = std::move(on_done)]() mutable {
                    sim->SubmitWork(
                        xserver_pid_, draw_proc_,
                        odsim::SimDuration::Seconds(render * 0.3),
                        [this, sim, on_done = std::move(on_done)]() mutable {
                          double think = think_seconds_;
                          auto finish = [this, on_done =
                                                   std::move(on_done)]() mutable {
                            arbiter_->Release();
                            busy_ = false;
                            if (on_done) {
                              on_done();
                            }
                          };
                          if (think <= 0.0) {
                            finish();
                            return;
                          }
                          sim->Schedule(odsim::SimDuration::Seconds(think),
                                        std::move(finish));
                        });
                  });
            });
      });
}

}  // namespace odapps
