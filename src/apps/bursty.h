// Stochastic bursty workload (Section 5.4).
//
// Each of the four applications is independently active or idle.  During
// any given minute, an active application stays active (and an idle one
// idle) with probability 0.9; with probability 0.1 it switches state.  An
// active application executes a fixed one-minute workload: the video
// application shows a one-minute video, the map application fetches five
// maps, the Web browser fetches five pages, and the speech recognizer
// recognizes five utterances.

#ifndef SRC_APPS_BURSTY_H_
#define SRC_APPS_BURSTY_H_

#include <array>

#include "src/apps/data_objects.h"
#include "src/apps/map_viewer.h"
#include "src/apps/speech_recognizer.h"
#include "src/apps/video_player.h"
#include "src/apps/web_browser.h"
#include "src/util/rng.h"

namespace odapps {

// A recorded activity schedule: per minute, which of the four applications
// (video, speech, web, map — in that order) are active.  Lets an observed
// stochastic run be replayed exactly, or hand-written schedules be driven.
struct MinuteSchedule {
  std::vector<std::array<bool, 4>> minutes;

  bool empty() const { return minutes.empty(); }
};

class BurstyWorkload {
 public:
  struct Config {
    double switch_probability = 0.1;
    odsim::SimDuration minute = odsim::SimDuration::Seconds(60);
    // Units per active minute for the request-driven applications.
    int speech_utterances_per_minute = 5;
    int maps_per_minute = 5;
    int pages_per_minute = 5;
    // When non-empty, states follow this schedule (repeating its last
    // minute if the run outlives it) instead of the Markov draws.
    MinuteSchedule replay;
  };

  BurstyWorkload(odsim::Simulator* sim, VideoPlayer* video,
                 SpeechRecognizer* speech, WebBrowser* web, MapViewer* map,
                 odutil::Rng* rng, const Config& config);
  BurstyWorkload(odsim::Simulator* sim, VideoPlayer* video,
                 SpeechRecognizer* speech, WebBrowser* web, MapViewer* map,
                 odutil::Rng* rng)
      : BurstyWorkload(sim, video, speech, web, map, rng, Config{}) {}

  BurstyWorkload(const BurstyWorkload&) = delete;
  BurstyWorkload& operator=(const BurstyWorkload&) = delete;

  // Draws initial states (each app active with probability 0.5) and starts
  // the per-minute schedule.
  void Start();
  void Stop();

  bool video_active() const { return active_[0]; }
  bool speech_active() const { return active_[1]; }
  bool web_active() const { return active_[2]; }
  bool map_active() const { return active_[3]; }

  // The activity states observed so far, one entry per elapsed minute —
  // feed back into Config::replay to reproduce this run's schedule.
  const MinuteSchedule& recorded_schedule() const { return recorded_; }

 private:
  void MinuteTick();
  void DriveVideo();
  void DriveSpeech(odsim::SimTime active_until);
  void DriveWeb(odsim::SimTime active_until);
  void DriveMap(odsim::SimTime active_until);

  odsim::Simulator* sim_;
  VideoPlayer* video_;
  SpeechRecognizer* speech_;
  WebBrowser* web_;
  MapViewer* map_;
  odutil::Rng* rng_;
  Config config_;

  bool running_ = false;
  size_t minute_index_ = 0;
  MinuteSchedule recorded_;
  std::array<bool, 4> active_ = {false, false, false, false};
  std::array<odsim::SimTime, 4> active_until_ = {};
  std::array<bool, 4> chain_running_ = {false, false, false, false};
  std::array<int, 4> next_object_ = {0, 0, 0, 0};
  odsim::EventHandle tick_;
};

}  // namespace odapps

#endif  // SRC_APPS_BURSTY_H_
