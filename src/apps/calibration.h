// Calibration constants for the simulated applications.
//
// Every tunable in the application models lives here.  Values were chosen so
// that the reproduction falls inside (or near) the bands the paper reports
// in Figures 6-16; tests/repro asserts those bands.  When adjusting a value,
// re-run bench/fig16_summary to see the whole matrix.

#ifndef SRC_APPS_CALIBRATION_H_
#define SRC_APPS_CALIBRATION_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace odapps {

// Every constant below as ordered ("<app>.<field>", value) pairs — the
// calibration block odbench stamps into artifact provenance so a recorded
// run is self-describing and `odbench diff` can name a perturbed constant.
std::vector<std::pair<std::string, double>> CalibrationConstants();

// ---------------------------------------------------------------------------
// Video player (Section 3.3)
// ---------------------------------------------------------------------------
struct VideoCalibration {
  // Playback chunk used for paced streaming.
  double chunk_seconds = 0.5;
  // CPU busy fraction for the X server at a full-size window; scales with
  // window area (the paper: X energy proportional to window area).
  double xserver_busy_full_window = 0.52;
  // Odyssey/warden CPU overhead per chunk, as a busy fraction.
  double odyssey_busy = 0.015;
  // Fraction of baseline window linear dimension in the reduced-window
  // fidelity (the paper halves height and width).
  double reduced_window_scale = 0.5;
};

// ---------------------------------------------------------------------------
// Speech recognizer (Section 3.4)
// ---------------------------------------------------------------------------
struct SpeechCalibration {
  // Waveform data rate (16-bit, 8 kHz capture).
  double waveform_bytes_per_second = 16000.0;
  // Front-end CPU work to produce the waveform, per utterance second.
  double frontend_rtf = 0.20;
  // Local recognition real-time factors (CPU seconds per utterance second).
  double local_rtf_full = 1.3;
  double local_rtf_reduced = 0.70;
  // Remote server processing real-time factors (client waits idle; the
  // servers are 200 MHz Pentium Pro desktops, slower than real time on the
  // full model).
  double server_rtf_full = 1.5;
  double server_rtf_reduced = 0.70;
  // Hybrid: first recognition phase runs locally...
  double hybrid_local_rtf_full = 0.22;
  double hybrid_local_rtf_reduced = 0.18;
  // ...compressing the waveform by this factor before shipping...
  double hybrid_compression = 5.0;
  // ...and the server finishes faster on the compact representation.
  double hybrid_server_rtf_full = 0.75;
  double hybrid_server_rtf_reduced = 0.40;
  // Remote reply size (recognized text plus alignment data).
  size_t reply_bytes = 1024;
  // With vocabulary paging enabled ("more complex recognition tasks may
  // trigger disk activity", Section 3.4), full-model local recognition
  // touches the disk for this fraction of its CPU time; the reduced model
  // fits entirely in physical memory.
  double full_vocab_disk_fraction = 0.15;
};

// ---------------------------------------------------------------------------
// Map viewer (Section 3.5)
// ---------------------------------------------------------------------------
struct MapCalibration {
  // Seconds the server spends filtering/cropping before transmission.
  double server_seconds = 0.35;
  size_t request_bytes = 512;
  // Client render cost: CPU seconds per megabyte of map data.
  double render_cpu_seconds_per_mb = 1.6;
  // Default user think time (sensitivity analysis uses 0/5/10/20 s).
  double think_seconds = 5.0;
};

// ---------------------------------------------------------------------------
// Web browser (Section 3.6)
// ---------------------------------------------------------------------------
struct WebCalibration {
  // Distillation server transcode time per original megabyte.
  double distill_seconds_per_mb = 1.2;
  size_t request_bytes = 640;
  size_t html_bytes = 2048;
  // Render cost: CPU seconds per megabyte of image data.
  double render_cpu_seconds_per_mb = 1.2;
  double think_seconds = 5.0;
  // JPEG distillation size factors relative to the original GIF.
  double jpeg75_scale = 0.55;
  double jpeg50_scale = 0.42;
  double jpeg25_scale = 0.30;
  double jpeg5_scale = 0.22;
};

inline constexpr VideoCalibration kVideoCal{};
inline constexpr SpeechCalibration kSpeechCal{};
inline constexpr MapCalibration kMapCal{};
inline constexpr WebCalibration kWebCal{};

}  // namespace odapps

#endif  // SRC_APPS_CALIBRATION_H_
