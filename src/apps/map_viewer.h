// Adaptive map viewer (Section 3.5) — Anvil.
//
// Fetches maps from a remote server via Odyssey and displays them.  Fidelity
// is lowered by filtering (omit minor roads, then secondary roads too) and
// by cropping to a geographic subset; the client annotates each request and
// the server performs the reduction before transmission.  Viewing includes
// user think time, during which the display stays lit.

#ifndef SRC_APPS_MAP_VIEWER_H_
#define SRC_APPS_MAP_VIEWER_H_

#include <string>

#include "src/apps/calibration.h"
#include "src/apps/data_objects.h"
#include "src/apps/display_arbiter.h"
#include "src/apps/wardens.h"
#include "src/display/zoned.h"
#include "src/odyssey/application.h"
#include "src/odyssey/viceroy.h"
#include "src/util/rng.h"

namespace odapps {

// Fidelity ladder, lowest first.
enum class MapFidelity : int {
  kCroppedSecondary = 0,  // Cropped plus minor+secondary filtering.
  kCropped = 1,
  kSecondaryFilter = 2,   // Minor and secondary roads omitted.
  kMinorFilter = 3,       // Minor roads omitted.
  kFull = 4,
};

class MapViewer : public odyssey::AdaptiveApplication {
 public:
  MapViewer(odyssey::Viceroy* viceroy, DisplayArbiter* arbiter, odutil::Rng* rng,
            int priority = 2);
  ~MapViewer() override;

  // -- AdaptiveApplication ---------------------------------------------------
  const std::string& name() const override { return name_; }
  int priority() const override { return priority_; }

  // Lets experiments reorder adaptation (the priority-ablation bench); the
  // paper plans dynamic user-controlled priorities as future work.
  void set_priority(int priority) { priority_ = priority; }
  const odyssey::FidelitySpec& fidelity_spec() const override { return spec_; }
  int current_fidelity() const override { return fidelity_; }
  void SetFidelity(int level) override;

  MapFidelity map_fidelity() const { return static_cast<MapFidelity>(fidelity_); }

  // Think-time override for the sensitivity analysis (seconds).
  void set_think_seconds(double seconds) { think_seconds_ = seconds; }
  double think_seconds() const { return think_seconds_; }

  // Fetches, renders, and views one map (including think time).  If the
  // fetch fails (retries exhausted, deadline in an outage), the viewer
  // redraws the most recently fetched map — stale data beats no data for
  // navigation — and still completes.
  void ViewMap(const MapObject& map, odsim::EventFn on_done);

  bool busy() const { return busy_; }

  // Views served from the stale cached map because the fetch failed.
  int maps_degraded() const { return maps_degraded_; }

  // Transfer size for a map at a fidelity level.
  static size_t BytesAtFidelity(const MapObject& map, MapFidelity fidelity);

  // Window geometry for zoned backlighting: cropped fidelities occupy a
  // smaller screen region.
  oddisplay::Rect window() const;
  void set_zoned_controller(oddisplay::ZonedBacklightController* controller);

 private:
  void UpdateZones();

  odyssey::Viceroy* viceroy_;
  DisplayArbiter* arbiter_;
  odutil::Rng* rng_;
  std::string name_ = "Map";
  int priority_;
  odyssey::FidelitySpec spec_;
  int fidelity_;
  double think_seconds_ = kMapCal.think_seconds;
  bool busy_ = false;
  int maps_degraded_ = 0;
  size_t cached_map_bytes_ = 0;  // Last successfully fetched map.

  MapWarden* warden_;
  odsim::ProcessId anvil_pid_;
  odsim::ProcedureId render_proc_;
  odsim::ProcessId xserver_pid_;
  odsim::ProcedureId draw_proc_;
  oddisplay::ZonedBacklightController* zoned_ = nullptr;
};

}  // namespace odapps

#endif  // SRC_APPS_MAP_VIEWER_H_
