// Experiment testbed: one fully wired client (simulator, ThinkPad 560X power
// model, WaveLAN link, Odyssey viceroy, display arbiter, and the four
// adaptive applications), plus a Measure() helper that runs a workload to
// completion and returns its energy broken down by hardware component and by
// software component — the two views every figure in the paper uses.

#ifndef SRC_APPS_TESTBED_H_
#define SRC_APPS_TESTBED_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/apps/display_arbiter.h"
#include "src/apps/map_viewer.h"
#include "src/apps/speech_recognizer.h"
#include "src/apps/video_player.h"
#include "src/apps/web_browser.h"
#include "src/net/link.h"
#include "src/odyssey/viceroy.h"
#include "src/power/thinkpad560x.h"
#include "src/powerscope/trace_recorder.h"
#include "src/sim/simulator.h"
#include "src/trace/power_trace.h"
#include "src/util/rng.h"

namespace odapps {

class TestBed {
 public:
  struct Options {
    uint64_t seed = 1;
    bool hw_pm = false;
    odnet::LinkConfig link;
    // Optional external simulator: fleet scenarios place several testbeds
    // in one event loop so their wardens can share services.  When null
    // the testbed owns a private simulator (the classic single client).
    odsim::Simulator* sim = nullptr;
    // Optional shared-service provider, installed on the viceroy before
    // the applications register their wardens: each warden attaches as a
    // session on the service returned for its data type instead of
    // creating a private server.  A default-configured shared service is
    // event-for-event identical to a private server, so a fleet of one
    // wired this way reproduces the single-client goldens.
    odyssey::Viceroy::ServiceProviderFn services;
    // Record per-component power traces: attaches an odscope::TraceRecorder
    // to the machine, and every Measure()/MeasureFor() returns its window's
    // trace alongside the scalar breakdowns.  The recorder observes draws
    // passively — energy numbers are bit-identical with tracing off.
    bool trace = false;
  };

  explicit TestBed(const Options& options);
  TestBed() : TestBed(Options{}) {}
  ~TestBed();

  TestBed(const TestBed&) = delete;
  TestBed& operator=(const TestBed&) = delete;

  odsim::Simulator& sim() { return *sim_; }
  odpower::Laptop& laptop() { return *laptop_; }
  odnet::Link& link() { return *link_; }
  odyssey::Viceroy& viceroy() { return *viceroy_; }
  DisplayArbiter& arbiter() { return *arbiter_; }
  odutil::Rng& rng() { return rng_; }

  VideoPlayer& video() { return *video_; }
  SpeechRecognizer& speech() { return *speech_; }
  WebBrowser& web() { return *web_; }
  MapViewer& map() { return *map_; }

  // The power-trace recorder, or null when Options::trace was off.
  odscope::TraceRecorder* tracer() { return tracer_.get(); }

  // Enables/disables hardware power management (disk spin-down, network
  // standby, display off when no visual app is active).
  void SetHardwarePm(bool enabled);
  bool hardware_pm() const;

  // -- Measurement -----------------------------------------------------------

  struct Measurement {
    double joules = 0.0;
    double seconds = 0.0;
    // Energy by hardware component name, plus "Synergy" for the superlinear
    // excess.
    std::map<std::string, double> by_component;
    // Energy and CPU time by software component (process name).
    std::map<std::string, double> by_process;
    std::map<std::string, double> cpu_seconds;
    // Server-side view at collection time, keyed by service name: what the
    // wardens' (possibly shared) distillation services did during the
    // measured window.  Counters are cumulative over the service lifetime.
    struct ServerStats {
      int queue_depth = 0;
      double busy_seconds = 0.0;
      int completed_requests = 0;
      double wait_p50_seconds = 0.0;
      double wait_p95_seconds = 0.0;
    };
    std::map<std::string, ServerStats> by_server;
    // Per-component power timeline over the measured window; set only when
    // Options::trace was enabled (shared so Measurement stays copyable).
    std::shared_ptr<const odtrace::PowerTrace> trace;

    double average_watts() const { return seconds > 0.0 ? joules / seconds : 0.0; }
    double Component(const std::string& name) const;
    double Process(const std::string& name) const;
  };

  // Runs `body` to completion: body receives a `done` callback it must
  // invoke when the workload finishes.  Returns energy consumed in between.
  Measurement Measure(const std::function<void(odsim::EventFn done)>& body);

  // Runs whatever is already scheduled for a fixed duration.
  Measurement MeasureFor(odsim::SimDuration duration);

 private:
  Measurement Collect(odsim::SimTime start);

  std::unique_ptr<odsim::Simulator> owned_sim_;
  odsim::Simulator* sim_;
  odutil::Rng rng_;
  std::unique_ptr<odpower::Laptop> laptop_;
  std::unique_ptr<odnet::Link> link_;
  std::unique_ptr<odyssey::Viceroy> viceroy_;
  std::unique_ptr<DisplayArbiter> arbiter_;
  std::unique_ptr<VideoPlayer> video_;
  std::unique_ptr<SpeechRecognizer> speech_;
  std::unique_ptr<WebBrowser> web_;
  std::unique_ptr<MapViewer> map_;
  std::unique_ptr<odscope::TraceRecorder> tracer_;
};

}  // namespace odapps

#endif  // SRC_APPS_TESTBED_H_
