// Adaptive Web browser (Section 3.6) — unmodified Netscape plus a client
// proxy that interacts with Odyssey, and a distillation server that
// transcodes images to lower fidelity with lossy JPEG compression.
//
// Fidelity levels follow the paper's sweep: original GIF, then JPEG quality
// 75, 50, 25, 5.  Control of fidelity is at the client: the proxy annotates
// each request with the desired level.

#ifndef SRC_APPS_WEB_BROWSER_H_
#define SRC_APPS_WEB_BROWSER_H_

#include <string>

#include "src/apps/calibration.h"
#include "src/apps/data_objects.h"
#include "src/apps/display_arbiter.h"
#include "src/apps/wardens.h"
#include "src/odyssey/application.h"
#include "src/odyssey/viceroy.h"
#include "src/util/rng.h"

namespace odapps {

// Fidelity ladder, lowest first.
enum class WebFidelity : int {
  kJpeg5 = 0,
  kJpeg25 = 1,
  kJpeg50 = 2,
  kJpeg75 = 3,
  kOriginal = 4,
};

class WebBrowser : public odyssey::AdaptiveApplication {
 public:
  WebBrowser(odyssey::Viceroy* viceroy, DisplayArbiter* arbiter, odutil::Rng* rng,
             int priority = 3);
  ~WebBrowser() override;

  // -- AdaptiveApplication ---------------------------------------------------
  const std::string& name() const override { return name_; }
  int priority() const override { return priority_; }

  // Lets experiments reorder adaptation (the priority-ablation bench); the
  // paper plans dynamic user-controlled priorities as future work.
  void set_priority(int priority) { priority_ = priority; }
  const odyssey::FidelitySpec& fidelity_spec() const override { return spec_; }
  int current_fidelity() const override { return fidelity_; }
  void SetFidelity(int level) override;

  WebFidelity web_fidelity() const { return static_cast<WebFidelity>(fidelity_); }

  void set_think_seconds(double seconds) { think_seconds_ = seconds; }
  double think_seconds() const { return think_seconds_; }

  // Fetches and displays one page (an image plus HTML), then think time.
  // If the image fetch fails (retries exhausted, deadline in an outage),
  // the browser degrades to a text-only layout rather than stall: the page
  // still completes and think time still elapses.
  void BrowsePage(const WebImage& image, odsim::EventFn on_done);

  bool busy() const { return busy_; }

  // Pages that rendered without their image because the fetch failed.
  int pages_degraded() const { return pages_degraded_; }

  // Distilled size of an image at a fidelity level.
  static size_t BytesAtFidelity(const WebImage& image, WebFidelity fidelity);

 private:
  odyssey::Viceroy* viceroy_;
  DisplayArbiter* arbiter_;
  odutil::Rng* rng_;
  std::string name_ = "Web";
  int priority_;
  odyssey::FidelitySpec spec_;
  int fidelity_;
  double think_seconds_ = kWebCal.think_seconds;
  bool busy_ = false;
  int pages_degraded_ = 0;

  WebWarden* warden_;
  odsim::ProcessId netscape_pid_;
  odsim::ProcedureId layout_proc_;
  odsim::ProcessId proxy_pid_;
  odsim::ProcedureId proxy_proc_;
  odsim::ProcessId xserver_pid_;
  odsim::ProcedureId draw_proc_;
};

}  // namespace odapps

#endif  // SRC_APPS_WEB_BROWSER_H_
