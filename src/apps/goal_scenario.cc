#include "src/apps/goal_scenario.h"

#include <memory>

#include "src/apps/bursty.h"
#include "src/apps/composite.h"
#include "src/apps/experiments.h"
#include "src/powerscope/online_monitor.h"
#include "src/powerscope/smart_battery.h"
#include "src/util/check.h"

namespace odapps {

GoalScenarioResult RunGoalScenario(const GoalScenarioOptions& options) {
  TestBed bed(TestBed::Options{.seed = options.seed, .hw_pm = true, .link = {}});
  if (options.invert_priorities) {
    bed.speech().set_priority(3);
    bed.video().set_priority(2);
    bed.map().set_priority(1);
    bed.web().set_priority(0);
  }
  if (options.rpc_loss_probability > 0.0) {
    odnet::RpcConfig rpc;
    rpc.loss_probability = options.rpc_loss_probability;
    bed.viceroy().rpc().set_config(rpc);
  }
  Settle(bed);

  odsim::SimTime start = bed.sim().Now();
  bed.laptop().accounting().Reset(start);
  odpower::EnergySupply supply(&bed.laptop().accounting(), options.initial_joules);
  std::unique_ptr<odscope::PowerMonitor> monitor;
  odenergy::GoalDirectorConfig director_config = options.director;
  if (options.use_smart_battery) {
    monitor = std::make_unique<odscope::SmartBattery>(
        &bed.sim(), &bed.laptop().machine(), odscope::SmartBatteryConfig{},
        options.seed ^ 0xf00dULL);
    // A coarse, quantized gauge warrants a small safety margin.
    if (director_config.residual_safety_fraction == 0.0) {
      director_config.residual_safety_fraction = 0.04;
    }
  } else {
    monitor = std::make_unique<odscope::OnlineMonitor>(
        &bed.sim(), &bed.laptop().machine(), odscope::OnlineMonitorConfig{},
        options.seed ^ 0xf00dULL);
  }
  odenergy::GoalDirector director(&bed.viceroy(), &supply, monitor.get(),
                                  start + options.goal, director_config);

  // Workload.
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  std::unique_ptr<BurstyWorkload> bursty;
  if (options.bursty) {
    bursty = std::make_unique<BurstyWorkload>(&bed.sim(), &bed.video(),
                                              &bed.speech(), &bed.web(),
                                              &bed.map(), &bed.rng());
    bursty->Start();
  } else {
    composite.StartPeriodic(options.composite_period);
    bed.video().PlayLooping(StandardVideoClips()[0]);
  }

  if (options.extend_at.has_value()) {
    bed.sim().Schedule(*options.extend_at, [&director, &options] {
      director.ExtendGoal(director.goal() + options.extend_by);
    });
  }

  director.Start(/*stop_sim_on_completion=*/true);
  // Safety valve: infeasible configurations should end, not hang.
  odsim::SimTime hard_stop =
      start + options.goal + options.extend_by + options.max_overrun;
  bed.sim().RunUntil(hard_stop);

  odsim::SimTime end = bed.sim().Now();
  director.Stop();
  composite.Stop();
  bed.video().StopLooping();
  if (bursty != nullptr) {
    bursty->Stop();
  }

  GoalScenarioResult result;
  result.goal_met = director.outcome() == odenergy::GoalOutcome::kGoalMet;
  result.residual_joules = supply.ResidualJoules(end);
  result.elapsed_seconds = (end - start).seconds();
  result.timeline = director.timeline();
  for (odyssey::AdaptiveApplication* app : bed.viceroy().applications()) {
    result.adaptations[app->name()] = bed.viceroy().AdaptationCount(app);
    result.fidelity_traces[app->name()] = director.FidelityLog(app);
    result.final_fidelity[app->name()] = app->current_fidelity();
  }
  result.total_adaptations = bed.viceroy().TotalAdaptations();
  if (director.infeasibility_detected().has_value()) {
    result.infeasibility_detected_seconds =
        (*director.infeasibility_detected() - start).seconds();
  }
  return result;
}

double MeasurePinnedLifetime(double initial_joules, bool lowest_fidelity,
                             uint64_t seed) {
  TestBed bed(TestBed::Options{.seed = seed, .hw_pm = true, .link = {}});
  if (lowest_fidelity) {
    bed.speech().SetFidelity(0);
    bed.video().SetFidelity(0);
    bed.map().SetFidelity(0);
    bed.web().SetFidelity(0);
  }
  Settle(bed);

  odsim::SimTime start = bed.sim().Now();
  bed.laptop().accounting().Reset(start);
  odpower::EnergySupply supply(&bed.laptop().accounting(), initial_joules);

  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  composite.StartPeriodic(odsim::SimDuration::Seconds(25));
  bed.video().PlayLooping(StandardVideoClips()[0]);

  // Poll for exhaustion at one-second granularity.
  while (!supply.Exhausted(bed.sim().Now())) {
    bed.sim().RunUntil(bed.sim().Now() + odsim::SimDuration::Seconds(1));
  }
  double lifetime = (bed.sim().Now() - start).seconds();
  composite.Stop();
  bed.video().StopLooping();
  return lifetime;
}

}  // namespace odapps
