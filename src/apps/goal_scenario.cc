#include "src/apps/goal_scenario.h"

#include <memory>

#include "src/apps/bursty.h"
#include "src/apps/composite.h"
#include "src/apps/experiments.h"
#include "src/fault/fault_injector.h"
#include "src/net/bandwidth_monitor.h"
#include "src/odyssey/warden.h"
#include "src/powerscope/online_monitor.h"
#include "src/powerscope/smart_battery.h"
#include "src/util/check.h"

namespace odapps {

GoalScenarioResult RunGoalScenario(const GoalScenarioOptions& options) {
  TestBed bed(TestBed::Options{
      .seed = options.seed, .hw_pm = true, .link = {}, .trace = options.trace});
  if (options.invert_priorities) {
    bed.speech().set_priority(3);
    bed.video().set_priority(2);
    bed.map().set_priority(1);
    bed.web().set_priority(0);
  }
  const bool disturbed = !options.fault_plan.empty();
  if (options.rpc_loss_probability > 0.0 || disturbed) {
    odnet::RpcConfig rpc;
    rpc.loss_probability = options.rpc_loss_probability;
    if (disturbed) {
      // Bounded retransmission and a per-call deadline: liveness under
      // outages (same wiring as the fault scenario).
      rpc.retry_timeout = options.retry_timeout;
      rpc.max_retries = options.max_retries;
      rpc.deadline = options.rpc_deadline;
    }
    bed.viceroy().rpc().set_config(rpc);
  }

  // Under a disturbance plan the viceroy's outage clamp rides along: a dead
  // link clamps fidelity until health returns.  No bandwidth *expectations*
  // are registered — the goal director owns routine fidelity decisions here.
  std::unique_ptr<odnet::BandwidthMonitor> bw_monitor;
  if (disturbed) {
    bed.viceroy().set_recovery_hysteresis(options.recovery_hysteresis);
    bw_monitor = std::make_unique<odnet::BandwidthMonitor>(
        &bed.sim(), &bed.link(), odnet::BandwidthMonitorConfig{});
    bw_monitor->set_health_callback(
        [&bed](odsim::SimTime, const odnet::BandwidthEstimate& estimate) {
          bed.viceroy().NotifyLinkHealth(estimate);
        });
  }
  Settle(bed);

  odsim::SimTime start = bed.sim().Now();
  bed.laptop().accounting().Reset(start);
  if (bed.tracer() != nullptr) {
    bed.tracer()->Restart(start);
  }
  odpower::EnergySupply supply(&bed.laptop().accounting(), options.initial_joules);
  std::unique_ptr<odscope::PowerMonitor> monitor;
  odenergy::GoalDirectorConfig director_config = options.director;
  if (options.use_smart_battery) {
    monitor = std::make_unique<odscope::SmartBattery>(
        &bed.sim(), &bed.laptop().machine(), odscope::SmartBatteryConfig{},
        options.seed ^ 0xf00dULL);
    // A coarse, quantized gauge warrants a small safety margin.
    if (director_config.residual_safety_fraction == 0.0) {
      director_config.residual_safety_fraction = 0.04;
    }
  } else {
    monitor = std::make_unique<odscope::OnlineMonitor>(
        &bed.sim(), &bed.laptop().machine(), odscope::OnlineMonitorConfig{},
        options.seed ^ 0xf00dULL);
    if (disturbed && director_config.stale_sample_limit == 0) {
      // The multimeter is a noisy continuous source; bit-identical repeats
      // mean a wedged feed.  1.2 s at 10 Hz.
      director_config.stale_sample_limit = 12;
    }
  }
  odenergy::GoalDirector director(&bed.viceroy(), &supply, monitor.get(),
                                  start + options.goal, director_config);

  // Self-constructive power model: probe baselines are the settled states
  // (the probe is constructed after Settle()), and the estimator sees only
  // the delivered gauge stream via the director.
  std::unique_ptr<odenergy::LearnedEstimator> learned;
  if (options.learned_model) {
    learned = std::make_unique<odenergy::LearnedEstimator>(
        &bed.laptop().machine(), start, options.learned_config);
    director.AttachLearnedEstimator(learned.get());
  }

  std::unique_ptr<odfault::FaultInjector> injector;
  if (disturbed) {
    odfault::FaultTargets targets;
    targets.link = &bed.link();
    targets.rpc = &bed.viceroy().rpc();
    targets.pm = &bed.laptop().power_manager();
    for (const char* data_type : {"video", "speech", "map", "web"}) {
      odyssey::Warden* warden = bed.viceroy().FindWarden(data_type);
      if (warden != nullptr) {
        targets.servers.push_back(warden->server());
      }
    }
    targets.monitor = monitor.get();
    injector = std::make_unique<odfault::FaultInjector>(&bed.sim(), targets);
  }

  // Workload.
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  std::unique_ptr<BurstyWorkload> bursty;
  std::function<void()> stop_workload;
  if (options.workload_factory) {
    stop_workload = options.workload_factory(bed);
  } else if (options.bursty) {
    bursty = std::make_unique<BurstyWorkload>(&bed.sim(), &bed.video(),
                                              &bed.speech(), &bed.web(),
                                              &bed.map(), &bed.rng());
    bursty->Start();
  } else {
    composite.StartPeriodic(options.composite_period);
    bed.video().PlayLooping(StandardVideoClips()[0]);
  }

  if (options.extend_at.has_value()) {
    bed.sim().Schedule(*options.extend_at, [&director, &options] {
      director.ExtendGoal(director.goal() + options.extend_by);
    });
  }

  // Optional 1 Hz probe (chaos-soak invariant checks).
  std::function<void()> probe;
  if (options.tick_probe) {
    probe = [&] {
      options.tick_probe(bed, supply);
      bed.sim().Schedule(odsim::SimDuration::Seconds(1), probe);
    };
    bed.sim().Schedule(odsim::SimDuration::Seconds(1), probe);
  }

  if (bw_monitor != nullptr) {
    bw_monitor->Start();
  }
  if (injector != nullptr) {
    injector->Arm(options.fault_plan);
  }
  director.Start(/*stop_sim_on_completion=*/true);
  // Safety valve: infeasible configurations should end, not hang.
  odsim::SimTime hard_stop =
      start + options.goal + options.extend_by + options.max_overrun;
  bed.sim().RunUntil(hard_stop);

  odsim::SimTime end = bed.sim().Now();
  director.Stop();
  if (bw_monitor != nullptr) {
    bw_monitor->Stop();
  }
  composite.Stop();
  bed.video().StopLooping();
  if (bursty != nullptr) {
    bursty->Stop();
  }
  if (stop_workload) {
    stop_workload();
  }

  GoalScenarioResult result;
  result.goal_met = director.outcome() == odenergy::GoalOutcome::kGoalMet;
  result.residual_joules = supply.ResidualJoules(end);
  result.elapsed_seconds = (end - start).seconds();
  result.timeline = director.timeline();
  for (odyssey::AdaptiveApplication* app : bed.viceroy().applications()) {
    result.adaptations[app->name()] = bed.viceroy().AdaptationCount(app);
    result.fidelity_traces[app->name()] = director.FidelityLog(app);
    result.final_fidelity[app->name()] = app->current_fidelity();
  }
  result.total_adaptations = bed.viceroy().TotalAdaptations();
  if (director.infeasibility_detected().has_value()) {
    result.infeasibility_detected_seconds =
        (*director.infeasibility_detected() - start).seconds();
  }
  result.outcome = director.outcome();
  result.estimated_residual_joules = director.EstimatedResidualJoules();
  result.final_health = director.health();
  result.safe_mode_seconds = director.SafeModeSeconds(end);
  result.safe_mode_entries = director.safe_mode_entries();
  result.invalid_samples = director.invalid_samples();
  result.telemetry_gaps = director.telemetry_gaps();
  result.outage_clamps = bed.viceroy().outage_clamps();
  result.accounted_joules = bed.laptop().accounting().TotalJoules(end);
  if (learned != nullptr) {
    result.learned_joules = learned->learned_joules();
    result.learned_converged = learned->converged_once();
    result.learned_confidence = learned->model().confidence();
    result.learned_primary_active = director.learned_primary_active();
    result.coefficient_recovery_error =
        learned->CoefficientRecoveryError(/*min_excitation_seconds=*/30.0,
                                          /*min_true_watts=*/0.05);
    result.coefficient_report = learned->Report();
    result.drift_entries = director.drift_entries();
    result.drift_seconds = director.DriftSeconds(end);
    result.drift_correction_joules = director.drift_correction_joules();
    if (director.first_drift_detected().has_value()) {
      result.first_drift_detected_seconds =
          (*director.first_drift_detected() - start).seconds();
    }
  }
  if (bed.tracer() != nullptr) {
    result.trace = std::make_shared<const odtrace::PowerTrace>(
        bed.tracer()->Snapshot(end));
  }
  return result;
}

double MeasurePinnedLifetime(double initial_joules, bool lowest_fidelity,
                             uint64_t seed,
                             const odfault::FaultPlan& fault_plan) {
  TestBed bed(TestBed::Options{.seed = seed, .hw_pm = true, .link = {}});
  if (lowest_fidelity) {
    bed.speech().SetFidelity(0);
    bed.video().SetFidelity(0);
    bed.map().SetFidelity(0);
    bed.web().SetFidelity(0);
  }
  // Injection target for telemetry kinds: a monitor nothing reads (the
  // pinned run has no director).  Never started, so it costs nothing.
  odscope::OnlineMonitor idle_monitor(&bed.sim(), &bed.laptop().machine(),
                                      odscope::OnlineMonitorConfig{},
                                      seed ^ 0xf00dULL);
  std::unique_ptr<odfault::FaultInjector> injector;
  if (!fault_plan.empty()) {
    odnet::RpcConfig rpc;
    rpc.retry_timeout = odsim::SimDuration::Millis(500);
    rpc.max_retries = 5;
    rpc.deadline = odsim::SimDuration::Seconds(10);
    bed.viceroy().rpc().set_config(rpc);
    odfault::FaultTargets targets;
    targets.link = &bed.link();
    targets.rpc = &bed.viceroy().rpc();
    targets.pm = &bed.laptop().power_manager();
    for (const char* data_type : {"video", "speech", "map", "web"}) {
      odyssey::Warden* warden = bed.viceroy().FindWarden(data_type);
      if (warden != nullptr) {
        targets.servers.push_back(warden->server());
      }
    }
    targets.monitor = &idle_monitor;
    injector = std::make_unique<odfault::FaultInjector>(&bed.sim(), targets);
  }
  Settle(bed);
  if (injector != nullptr) {
    injector->Arm(fault_plan);
  }

  odsim::SimTime start = bed.sim().Now();
  bed.laptop().accounting().Reset(start);
  odpower::EnergySupply supply(&bed.laptop().accounting(), initial_joules);

  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  composite.StartPeriodic(odsim::SimDuration::Seconds(25));
  bed.video().PlayLooping(StandardVideoClips()[0]);

  // Poll for exhaustion at one-second granularity.
  while (!supply.Exhausted(bed.sim().Now())) {
    bed.sim().RunUntil(bed.sim().Now() + odsim::SimDuration::Seconds(1));
  }
  double lifetime = (bed.sim().Now() - start).seconds();
  composite.Stop();
  bed.video().StopLooping();
  return lifetime;
}

}  // namespace odapps
