// Per-component power timelines: the odtrace data model.
//
// The paper's central claim is that adaptation changes the *shape* of a
// run's power draw over time, yet scalar artifacts only keep cross-trial
// summaries — which average away exactly the bugs an energy system must
// catch (a component wedged in a high-power state, a retransmission storm,
// a fidelity oscillation).  Following "Software Validation using Power
// Profiles" (Lencevicius et al.), a run's power trace doubles as a
// software-validation signature: odscope::TraceRecorder captures one
// ComponentTrace per hardware component (plus the superlinear "Synergy"
// excess) as a piecewise-constant step function, run-length encoded — a
// segment opens only when the draw actually changes.
//
// Invariants (checked by Validate, relied on by the diff engine):
//   * segment start times are strictly increasing (monotone in time) and
//     lie inside [start_us, end_us];
//   * the first segment of every component opens at start_us, so the step
//     function is total over the trace window;
//   * consecutive segments carry different draws (RLE: equal-power change
//     notifications are coalesced away);
//   * every draw is finite.
//
// Because the machine is simulated in integer microseconds and the recorder
// reads the same Component::power() values the analytic EnergyAccounting
// integrates, the integral of a component's trace reproduces the accounting
// totals to floating-point accumulation error (a property test pins 1e-9 J).

#ifndef SRC_TRACE_POWER_TRACE_H_
#define SRC_TRACE_POWER_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace odtrace {

struct TraceSegment {
  int64_t start_us = 0;  // Absolute sim time at which the segment opens.
  double watts = 0.0;    // Draw until the next segment (or trace end).

  bool operator==(const TraceSegment&) const = default;
};

// One component's piecewise-constant draw over the trace window.
struct ComponentTrace {
  std::string name;
  std::vector<TraceSegment> segments;

  bool operator==(const ComponentTrace&) const = default;
};

struct PowerTrace {
  int64_t start_us = 0;  // Window the step functions are total over.
  int64_t end_us = 0;

  // Machine components in attach order, then "Synergy" (the superlinear
  // excess, not attributable to any single component).
  std::vector<ComponentTrace> components;

  int64_t duration_us() const { return end_us - start_us; }

  const ComponentTrace* Find(const std::string& name) const;

  // Exact integral of one component's step function over the window, in
  // joules (compensated summation, so the error is the representation's,
  // not the accumulation's).  0.0 when the component is absent.
  double ComponentJoules(const std::string& name) const;

  // Integral of the whole-machine draw: sum over every component stream
  // (the "Synergy" stream included, so this equals the machine total).
  double TotalJoules() const;

  // Checks the invariants in the header comment.  On failure returns false
  // and, when `error` is non-null, a one-line description of the first
  // violation.
  bool Validate(std::string* error = nullptr) const;

  bool operator==(const PowerTrace&) const = default;
};

// Integral of one step function over [trace_start_us, end_us], in joules.
double SegmentsJoules(const std::vector<TraceSegment>& segments,
                      int64_t end_us);

}  // namespace odtrace

#endif  // SRC_TRACE_POWER_TRACE_H_
