#include "src/trace/trace_diff.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace odtrace {

namespace {

using Severity = TraceDiff::Severity;

bool SameValue(double x, double y) {
  return x == y || (std::isnan(x) && std::isnan(y));
}

std::string FormatWatts(double watts) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", watts);
  return buf;
}

std::string FormatSeconds(int64_t us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6fs", static_cast<double>(us) * 1e-6);
  return buf;
}

class TraceDiffBuilder {
 public:
  explicit TraceDiffBuilder(const TraceDiffOptions& options)
      : options_(options) {}

  void Structural(std::string path, std::string detail) {
    diff_.structural.push_back(
        TraceDiff::Structural{std::move(path), std::move(detail)});
    Raise(Severity::kRegression);
  }

  void Tolerated() {
    ++diff_.tolerated_intervals;
    Raise(Severity::kDrift);
  }

  // Walks two step functions along their merged boundaries over the common
  // window [0, end_us) (times relative to each trace's start) and records
  // the divergence summary for this component, if any.
  void CompareComponent(const std::string& path,
                        const std::vector<TraceSegment>& a, int64_t a_start,
                        const std::vector<TraceSegment>& b, int64_t b_start,
                        int64_t end_us, int64_t report_base_us) {
    const odharness::DiffOptions watt_band{options_.rtol, options_.atol};

    TraceDiff::Divergence divergence;
    divergence.path = path;
    divergence.within_shift = true;
    bool window_open = false;
    int64_t window_begin = 0;
    int64_t window_end = 0;
    double window_a = 0.0, window_b = 0.0;

    auto close_window = [&]() {
      if (!window_open) {
        return;
      }
      window_open = false;
      const int64_t duration = window_end - window_begin;
      divergence.divergent_us += duration;
      if (duration > options_.max_shift_us) {
        divergence.within_shift = false;
      }
      if (divergence.windows == 1) {
        divergence.first_begin_us = report_base_us + window_begin;
        divergence.first_end_us = report_base_us + window_end;
        divergence.first_a_watts = window_a;
        divergence.first_b_watts = window_b;
      }
    };

    size_t ia = 0, ib = 0;  // Segment active at time t on each side.
    int64_t t = 0;
    while (t < end_us) {
      const int64_t next_a =
          ia + 1 < a.size() ? a[ia + 1].start_us - a_start : end_us;
      const int64_t next_b =
          ib + 1 < b.size() ? b[ib + 1].start_us - b_start : end_us;
      const int64_t next = std::min(end_us, std::min(next_a, next_b));
      const double wa = a[ia].watts;
      const double wb = b[ib].watts;
      if (!odharness::WithinTolerance(wa, wb, watt_band)) {
        if (!window_open) {
          window_open = true;
          window_begin = t;
          window_a = wa;
          window_b = wb;
          ++divergence.windows;
        }
        window_end = next;
      } else {
        close_window();
        if (!SameValue(wa, wb)) {
          Tolerated();
        }
      }
      t = next;
      if (next == next_a && ia + 1 < a.size()) {
        ++ia;
      }
      if (next == next_b && ib + 1 < b.size()) {
        ++ib;
      }
    }
    close_window();

    if (divergence.windows > 0) {
      Raise(divergence.within_shift ? Severity::kDrift
                                    : Severity::kRegression);
      diff_.divergences.push_back(std::move(divergence));
    }
  }

  void Hint(std::string text) {
    diff_.provenance_hints.push_back(std::move(text));
  }

  TraceDiff Take() { return std::move(diff_); }

 private:
  void Raise(Severity severity) {
    diff_.severity = std::max(diff_.severity, severity);
  }

  TraceDiffOptions options_;
  TraceDiff diff_;
};

void DiffLabeledTrace(const std::string& path,
                      const TraceArtifact::LabeledTrace& a,
                      const TraceArtifact::LabeledTrace& b,
                      TraceDiffBuilder& builder) {
  if (a.seed != b.seed) {
    builder.Structural(path + ".seed", "seed " + std::to_string(a.seed) +
                                           " vs " + std::to_string(b.seed));
    return;  // Different seeds trace different runs; comparing the shapes
             // would only drown the report in noise.
  }
  std::string error;
  if (!a.trace.Validate(&error)) {
    builder.Structural(path, "first trace invalid: " + error);
    return;
  }
  if (!b.trace.Validate(&error)) {
    builder.Structural(path, "second trace invalid: " + error);
    return;
  }
  if (a.trace.start_us != b.trace.start_us) {
    builder.Structural(path + ".start_us",
                       "measurement window opens at " +
                           FormatSeconds(a.trace.start_us) + " vs " +
                           FormatSeconds(b.trace.start_us));
  }
  const int64_t common_us =
      std::min(a.trace.duration_us(), b.trace.duration_us());
  if (a.trace.duration_us() != b.trace.duration_us()) {
    // Still walk the common prefix below: the first divergence usually
    // explains *why* one run ended early.
    builder.Structural(
        path + ".duration_us",
        FormatSeconds(a.trace.duration_us()) + " vs " +
            FormatSeconds(b.trace.duration_us()) + " (divergent tail after " +
            FormatSeconds(a.trace.start_us + common_us) + ")");
  }

  for (const ComponentTrace& component : a.trace.components) {
    const std::string component_path = path + "." + component.name;
    const ComponentTrace* other = b.trace.Find(component.name);
    if (other == nullptr) {
      builder.Structural(component_path, "component only in first");
      continue;
    }
    builder.CompareComponent(component_path, component.segments,
                             a.trace.start_us, other->segments,
                             b.trace.start_us, common_us, a.trace.start_us);
  }
  for (const ComponentTrace& component : b.trace.components) {
    if (a.trace.Find(component.name) == nullptr) {
      builder.Structural(path + "." + component.name,
                         "component only in second");
    }
  }
}

}  // namespace

TraceDiff DiffTraceArtifacts(const TraceArtifact& a, const TraceArtifact& b,
                             const TraceDiffOptions& options) {
  TraceDiffBuilder builder(options);

  if (a.experiment != b.experiment) {
    builder.Structural("experiment",
                       "\"" + a.experiment + "\" vs \"" + b.experiment + "\"");
  }
  for (std::string& hint :
       odharness::ProvenanceHints(a.provenance, b.provenance)) {
    builder.Hint(std::move(hint));
  }

  // Traces match by label, not position: a reordered document is not a
  // change.  Labels are unique within an artifact.
  for (const TraceArtifact::LabeledTrace& labeled : a.traces) {
    const std::string path = "traces[" + labeled.label + "]";
    const TraceArtifact::LabeledTrace* other = b.FindTrace(labeled.label);
    if (other == nullptr) {
      builder.Structural(path, "trace only in first");
    } else {
      DiffLabeledTrace(path, labeled, *other, builder);
    }
  }
  for (const TraceArtifact::LabeledTrace& labeled : b.traces) {
    if (a.FindTrace(labeled.label) == nullptr) {
      builder.Structural("traces[" + labeled.label + "]",
                         "trace only in second");
    }
  }

  return builder.Take();
}

void PrintTraceDiff(const TraceDiff& diff, std::FILE* out) {
  size_t out_of_band = 0;
  for (const TraceDiff::Divergence& divergence : diff.divergences) {
    if (!divergence.within_shift) {
      ++out_of_band;
    }
    // The first divergent time window, with draws, so a failing CI log
    // says *when* the profiles first part ways — not just which cell.
    std::fprintf(
        out, "divergent  %s: first window [%s, %s) %s W -> %s W "
             "(%zu window(s), %s divergent total%s)\n",
        divergence.path.c_str(), FormatSeconds(divergence.first_begin_us).c_str(),
        FormatSeconds(divergence.first_end_us).c_str(),
        FormatWatts(divergence.first_a_watts).c_str(),
        FormatWatts(divergence.first_b_watts).c_str(), divergence.windows,
        FormatSeconds(divergence.divergent_us).c_str(),
        divergence.within_shift ? ", within shift band"
                                : ", OUT OF SHIFT BAND");
  }
  for (const TraceDiff::Structural& structural : diff.structural) {
    std::fprintf(out, "structural %s: %s\n", structural.path.c_str(),
                 structural.detail.c_str());
  }
  for (const std::string& hint : diff.provenance_hints) {
    std::fprintf(out, "provenance %s\n", hint.c_str());
  }
  switch (diff.severity) {
    case Severity::kIdentical:
      if (!diff.provenance_hints.empty()) {
        std::fprintf(out, "identical traces (provenance differs, see above)\n");
      }
      break;
    case Severity::kDrift:
      std::fprintf(out,
                   "%zu component(s) diverged within the shift band, "
                   "%zu tolerated interval(s)\n",
                   diff.divergences.size(), diff.tolerated_intervals);
      break;
    case Severity::kRegression:
      std::fprintf(out,
                   "%zu component(s) diverged (%zu out of shift band), "
                   "%zu structural mismatch(es)\n",
                   diff.divergences.size(), out_of_band,
                   diff.structural.size());
      break;
  }
}

}  // namespace odtrace
