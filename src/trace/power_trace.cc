#include "src/trace/power_trace.h"

#include <cmath>
#include <cstdio>

namespace odtrace {

namespace {

std::string Describe(const char* format, const std::string& name,
                     long long value) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), format, name.c_str(), value);
  return buf;
}

}  // namespace

const ComponentTrace* PowerTrace::Find(const std::string& name) const {
  for (const ComponentTrace& component : components) {
    if (component.name == name) {
      return &component;
    }
  }
  return nullptr;
}

double SegmentsJoules(const std::vector<TraceSegment>& segments,
                      int64_t end_us) {
  // Kahan summation: the cross-check against EnergyAccounting is asserted
  // to 1e-9 J, so the integral must not add its own accumulation error on
  // top of the representation's.
  double sum = 0.0;
  double carry = 0.0;
  for (size_t i = 0; i < segments.size(); ++i) {
    const int64_t close =
        i + 1 < segments.size() ? segments[i + 1].start_us : end_us;
    const double dt = static_cast<double>(close - segments[i].start_us) * 1e-6;
    const double term = segments[i].watts * dt - carry;
    const double next = sum + term;
    carry = (next - sum) - term;
    sum = next;
  }
  return sum;
}

double PowerTrace::ComponentJoules(const std::string& name) const {
  const ComponentTrace* component = Find(name);
  return component == nullptr ? 0.0 : SegmentsJoules(component->segments, end_us);
}

double PowerTrace::TotalJoules() const {
  double sum = 0.0;
  for (const ComponentTrace& component : components) {
    sum += SegmentsJoules(component.segments, end_us);
  }
  return sum;
}

bool PowerTrace::Validate(std::string* error) const {
  auto fail = [error](std::string why) {
    if (error != nullptr) {
      *error = std::move(why);
    }
    return false;
  };
  if (end_us < start_us) {
    return fail("trace window ends before it starts");
  }
  for (const ComponentTrace& component : components) {
    if (component.segments.empty()) {
      return fail("component " + component.name + " has no segments");
    }
    if (component.segments.front().start_us != start_us) {
      return fail(Describe("component %s does not open at the trace start "
                           "(first segment at %lld)",
                           component.name,
                           static_cast<long long>(
                               component.segments.front().start_us)));
    }
    for (size_t i = 0; i < component.segments.size(); ++i) {
      const TraceSegment& segment = component.segments[i];
      if (!std::isfinite(segment.watts)) {
        return fail(Describe("component %s has a non-finite draw at %lld",
                             component.name,
                             static_cast<long long>(segment.start_us)));
      }
      if (i > 0) {
        if (segment.start_us <= component.segments[i - 1].start_us) {
          return fail(Describe(
              "component %s is not monotone in time at %lld", component.name,
              static_cast<long long>(segment.start_us)));
        }
        if (segment.watts == component.segments[i - 1].watts) {
          return fail(Describe(
              "component %s has an uncoalesced equal-power segment at %lld",
              component.name, static_cast<long long>(segment.start_us)));
        }
      }
      if (segment.start_us > end_us ||
          (segment.start_us == end_us && duration_us() > 0)) {
        return fail(Describe(
            "component %s has a segment outside the trace window at %lld",
            component.name, static_cast<long long>(segment.start_us)));
      }
    }
  }
  return true;
}

}  // namespace odtrace
