// Trace artifacts: power timelines as CI-diffable JSON documents.
//
// `odbench run <experiment> --trace` writes one trace document next to the
// scalar artifact (`<experiment>.trace.json`) holding the per-component
// power timelines of that experiment's signature scenarios.  The document
// carries the same schema-v3 provenance block as the scalar artifact (git
// revision, seed policy, fault plan, calibration constants) and, like it,
// contains measured content only — byte-identical for any --jobs value.
//
// Segments are delta-encoded to keep committed goldens compact: each
// segment is a `[dt_us, watts]` pair where dt_us is the integer
// microseconds since the previous segment opened (since the trace start
// for the first).  Run-length encoding is inherited from the recorder —
// a segment exists only where the draw changed.
//
// Schema:
//   {
//     "schema_version": 3,
//     "kind": "power_trace",
//     "experiment": "fig06_video",
//     "provenance": { ...same block as the scalar artifact... },
//     "traces": [
//       {"label": "Video 1/Baseline", "seed": 1000,
//        "start_us": 15000000, "duration_us": 231500000,
//        "components": [
//          {"name": "CPU", "segments": [[0, 0.0], [1812, 6.0], ...]},
//          ...
//        ]}
//     ]
//   }

#ifndef SRC_TRACE_TRACE_ARTIFACT_H_
#define SRC_TRACE_TRACE_ARTIFACT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/harness/artifact.h"
#include "src/harness/json.h"
#include "src/trace/power_trace.h"

namespace odharness {
class RunContext;
}  // namespace odharness

namespace odtrace {

using JsonValue = odharness::JsonValue;

struct TraceArtifact {
  static constexpr int kSchemaVersion = 3;
  static constexpr const char* kKind = "power_trace";

  std::string experiment;
  odharness::Provenance provenance;

  struct LabeledTrace {
    std::string label;
    uint64_t seed = 0;
    PowerTrace trace;
  };
  std::vector<LabeledTrace> traces;

  void Add(std::string label, uint64_t seed, PowerTrace trace);
  // The recorded trace with this label, or nullptr.  Labels are unique per
  // artifact; the diff engine matches traces by label, not position.
  const LabeledTrace* FindTrace(const std::string& label) const;

  JsonValue ToJson() const;
  // Reconstructs an artifact from ToJson() output.  Returns nullopt —
  // never crashes — when `json` is not a power_trace document (wrong kind
  // or version, missing experiment, malformed trace entries).
  static std::optional<TraceArtifact> FromJson(const JsonValue& json);

  // Atomic write / tolerant read, mirroring RunArtifact's file contract.
  bool WriteFile(const std::string& path, bool compact = false) const;
  static std::optional<TraceArtifact> ReadFile(const std::string& path);
};

// Stamps `artifact` with the context's experiment name and provenance
// (call after any fault plan has been recorded) and hands it to the
// context as the aux document "<experiment>.trace.json", which the
// scheduler writes next to the scalar artifact.
void AttachTraceArtifact(odharness::RunContext& ctx, TraceArtifact artifact);

}  // namespace odtrace

#endif  // SRC_TRACE_TRACE_ARTIFACT_H_
