#include "src/trace/trace_artifact.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "src/harness/registry.h"

namespace odtrace {

namespace {

JsonValue ComponentToJson(const ComponentTrace& component, int64_t start_us) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("name", component.name);
  JsonValue segments = JsonValue::MakeArray();
  // Delta encoding: microseconds since the previous segment opened (since
  // the trace start for the first segment, which the recorder guarantees
  // opens exactly there, so the first delta is always 0).
  int64_t previous_us = start_us;
  for (const TraceSegment& segment : component.segments) {
    JsonValue pair = JsonValue::MakeArray();
    pair.Append(static_cast<double>(segment.start_us - previous_us));
    pair.Append(segment.watts);
    segments.Append(std::move(pair));
    previous_us = segment.start_us;
  }
  object.Set("segments", std::move(segments));
  return object;
}

bool ComponentFromJson(const JsonValue& json, int64_t start_us,
                       ComponentTrace* out) {
  const JsonValue* name = json.Find("name");
  const JsonValue* segments = json.Find("segments");
  if (name == nullptr || !name->is_string() || segments == nullptr ||
      !segments->is_array()) {
    return false;
  }
  out->name = name->AsString();
  int64_t previous_us = start_us;
  for (const JsonValue& pair : segments->array()) {
    if (!pair.is_array() || pair.array().size() != 2 ||
        !pair.array()[0].is_number() || !pair.array()[1].is_number()) {
      return false;
    }
    const double delta = pair.array()[0].AsDouble();
    if (!std::isfinite(delta) || delta < 0.0 || delta != std::floor(delta)) {
      return false;
    }
    TraceSegment segment;
    segment.start_us = previous_us + static_cast<int64_t>(delta);
    segment.watts = pair.array()[1].AsDouble();
    previous_us = segment.start_us;
    out->segments.push_back(segment);
  }
  return true;
}

}  // namespace

void TraceArtifact::Add(std::string label, uint64_t seed, PowerTrace trace) {
  traces.push_back(LabeledTrace{std::move(label), seed, std::move(trace)});
}

const TraceArtifact::LabeledTrace* TraceArtifact::FindTrace(
    const std::string& label) const {
  for (const LabeledTrace& labeled : traces) {
    if (labeled.label == label) {
      return &labeled;
    }
  }
  return nullptr;
}

JsonValue TraceArtifact::ToJson() const {
  JsonValue root = JsonValue::MakeObject();
  root.Set("schema_version", kSchemaVersion);
  root.Set("kind", kKind);
  root.Set("experiment", experiment);
  root.Set("provenance", odharness::ProvenanceToJson(provenance));

  JsonValue traces_json = JsonValue::MakeArray();
  for (const LabeledTrace& labeled : traces) {
    JsonValue trace_json = JsonValue::MakeObject();
    trace_json.Set("label", labeled.label);
    trace_json.Set("seed", labeled.seed);
    trace_json.Set("start_us", static_cast<double>(labeled.trace.start_us));
    trace_json.Set("duration_us",
                   static_cast<double>(labeled.trace.duration_us()));
    JsonValue components = JsonValue::MakeArray();
    for (const ComponentTrace& component : labeled.trace.components) {
      components.Append(ComponentToJson(component, labeled.trace.start_us));
    }
    trace_json.Set("components", std::move(components));
    traces_json.Append(std::move(trace_json));
  }
  root.Set("traces", std::move(traces_json));
  return root;
}

std::optional<TraceArtifact> TraceArtifact::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return std::nullopt;
  }
  const JsonValue* version = json.Find("schema_version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->AsDouble()) != kSchemaVersion) {
    return std::nullopt;
  }
  const JsonValue* kind = json.Find("kind");
  if (kind == nullptr || !kind->is_string() || kind->AsString() != kKind) {
    return std::nullopt;
  }
  const JsonValue* name = json.Find("experiment");
  if (name == nullptr || !name->is_string()) {
    return std::nullopt;
  }

  TraceArtifact artifact;
  artifact.experiment = name->AsString();
  if (const JsonValue* prov = json.Find("provenance")) {
    if (!prov->is_object()) {
      return std::nullopt;
    }
  }
  artifact.provenance =
      odharness::ProvenanceFromJson(json.Find("provenance"));

  const JsonValue* traces = json.Find("traces");
  if (traces == nullptr || !traces->is_array()) {
    return std::nullopt;
  }
  for (const JsonValue& trace_json : traces->array()) {
    const JsonValue* label = trace_json.Find("label");
    const JsonValue* start = trace_json.Find("start_us");
    const JsonValue* duration = trace_json.Find("duration_us");
    const JsonValue* components = trace_json.Find("components");
    if (label == nullptr || !label->is_string() || start == nullptr ||
        !start->is_number() || duration == nullptr ||
        !duration->is_number() || components == nullptr ||
        !components->is_array()) {
      return std::nullopt;
    }
    LabeledTrace labeled;
    labeled.label = label->AsString();
    labeled.seed = static_cast<uint64_t>(trace_json.DoubleAt("seed"));
    labeled.trace.start_us = static_cast<int64_t>(start->AsDouble());
    labeled.trace.end_us =
        labeled.trace.start_us + static_cast<int64_t>(duration->AsDouble());
    for (const JsonValue& component_json : components->array()) {
      ComponentTrace component;
      if (!ComponentFromJson(component_json, labeled.trace.start_us,
                             &component)) {
        return std::nullopt;
      }
      labeled.trace.components.push_back(std::move(component));
    }
    artifact.traces.push_back(std::move(labeled));
  }
  return artifact;
}

bool TraceArtifact::WriteFile(const std::string& path, bool compact) const {
  return odharness::WriteJsonFile(path, ToJson(), compact);
}

std::optional<TraceArtifact> TraceArtifact::ReadFile(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "r"), &std::fclose);
  if (file == nullptr) {
    return std::nullopt;
  }
  std::string text;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    text.append(buffer, read);
  }
  std::optional<JsonValue> json = JsonValue::Parse(text);
  if (!json.has_value()) {
    return std::nullopt;
  }
  return FromJson(*json);
}

void AttachTraceArtifact(odharness::RunContext& ctx, TraceArtifact artifact) {
  artifact.experiment = ctx.name();
  artifact.provenance = ctx.artifact().provenance;
  ctx.AddAuxDocument(ctx.name() + ".trace.json", artifact.ToJson());
}

}  // namespace odtrace
