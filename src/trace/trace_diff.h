// Shape-level comparison of two power-trace artifacts.
//
// `odbench diff --traces a.json b.json [--rtol R --atol A --max-shift S]`
// compares the *shape* of two runs' power profiles, not just their scalar
// means — the gate the scalar diff cannot provide: a 200 ms stall in a
// high-power state moves a multi-hundred-joule total by well under any
// usable scalar tolerance, but it is a glaring new step in the trace.
//
// Alignment: traces are matched by label, components by name.  Two step
// functions over the same window are walked along their merged segment
// boundaries; every interval where the draws disagree beyond the
// |a - b| <= atol + rtol * max(|a|, |b|) band is divergent.  Adjacent
// divergent intervals merge into *windows*, and each window is classified
// by its duration against `max_shift_us`:
//
//   duration <= max_shift_us  -> drift.  A boundary that moved by less
//       than the shift band produces exactly such a short window (before
//       the move one side has switched and the other has not); tolerating
//       it absorbs benign event-ordering jitter without excusing any
//       sustained power difference.
//   duration >  max_shift_us  -> regression.  The profiles genuinely
//       disagree for longer than any permissible boundary shift.
//
// With max_shift_us = 0 every divergent window is a regression.  Trace
// windows of different durations are structurally different (the common
// prefix is still walked, and the report says where the tail begins).
//
// Severity maps to the same CLI exit codes as the scalar diff:
//   0 identical, 1 drift (all windows within the shift band), 2 regression
//   (a sustained divergence, or structure changed: label/component missing,
//   seed or duration mismatch, invalid trace).
//
// Provenance differences are hints, never verdicts — same contract as
// odharness::DiffArtifacts.

#ifndef SRC_TRACE_TRACE_DIFF_H_
#define SRC_TRACE_TRACE_DIFF_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/artifact_diff.h"
#include "src/trace/trace_artifact.h"

namespace odtrace {

struct TraceDiffOptions {
  double rtol = 0.0;  // Relative tolerance on the draw, per interval.
  double atol = 0.0;  // Absolute tolerance on the draw, in watts.
  // Longest divergent window still classified as drift (boundary shift)
  // rather than regression, in microseconds.
  int64_t max_shift_us = 0;
};

struct TraceDiff {
  enum class Severity { kIdentical = 0, kDrift = 1, kRegression = 2 };

  // One component's divergence summary.  The *first* divergent window is
  // reported with its bounds and draws so a failing CI log pinpoints when
  // the profiles first part ways, not just which component moved.
  struct Divergence {
    // Dotted location, e.g. "traces[Video 1/Baseline].CPU".
    std::string path;
    int64_t first_begin_us = 0;  // First divergent window, absolute sim time.
    int64_t first_end_us = 0;
    double first_a_watts = 0.0;  // Draws at the window's opening interval.
    double first_b_watts = 0.0;
    size_t windows = 0;            // Total divergent windows.
    int64_t divergent_us = 0;      // Total divergent time across windows.
    bool within_shift = false;     // Every window within the shift band?
  };

  struct Structural {
    std::string path;
    std::string detail;
  };

  Severity severity = Severity::kIdentical;
  std::vector<Divergence> divergences;
  std::vector<Structural> structural;
  // Intervals where the draws differed but stayed inside the watt
  // tolerance band (raises severity to drift, like a within-tolerance
  // scalar cell, without producing a Divergence entry).
  size_t tolerated_intervals = 0;
  // Provenance differences (informational; never affect severity).
  std::vector<std::string> provenance_hints;

  bool identical() const { return severity == Severity::kIdentical; }
  // The `odbench diff --traces` exit code for this comparison: 0, 1, or 2.
  int ExitCode() const { return static_cast<int>(severity); }
};

TraceDiff DiffTraceArtifacts(const TraceArtifact& a, const TraceArtifact& b,
                             const TraceDiffOptions& options = {});

// Prints a human-readable report: per-component first-divergent-window
// lines first, structural mismatches next, provenance hints after, one-line
// verdict last.  Quiet when identical and no provenance drifted.
void PrintTraceDiff(const TraceDiff& diff, std::FILE* out);

}  // namespace odtrace

#endif  // SRC_TRACE_TRACE_DIFF_H_
