// Drives a Scenario's behavior timeline through a TestBed.
//
// Each phase kind maps onto the idiom the apps already speak (the
// BurstyWorkload chain pattern): video phases play clip segments
// back-to-back until the window closes; web/map/speech phases issue
// requests at the phase's per-minute rate with a busy guard; composite
// phases run the four-app composite iteration on the phase's period
// (deferring politely while another channel holds an app); sync phases
// tick a small background fetch; burst phases run the Section 5.4
// stochastic workload.  Gap phases are environment, not behavior — they
// reach the run as the scenario's DerivedFaultPlan() windows, wired
// through ApplyScenarioWorkload below.
//
// The driver owns its RNG (derived from the run seed), so the same
// (scenario, seed) pair replays the identical timeline — byte-identical
// artifacts, jobs-independent.

#ifndef SRC_SCENARIO_DRIVER_H_
#define SRC_SCENARIO_DRIVER_H_

#include <array>
#include <functional>
#include <memory>

#include "src/apps/bursty.h"
#include "src/apps/composite.h"
#include "src/apps/goal_scenario.h"
#include "src/apps/testbed.h"
#include "src/scenario/scenario.h"
#include "src/util/rng.h"

namespace odscenario {

class ScenarioDriver {
 public:
  // What the timeline actually did — recorded per run for artifact
  // breakdowns and determinism checks.
  struct Counters {
    int video_segments = 0;
    int pages = 0;
    int maps = 0;
    int utterances = 0;
    int composite_iterations = 0;
    // Composite starts postponed because another channel held an app (the
    // composite iteration calls apps without busy guards, so the driver
    // waits instead of crashing into OD_CHECK(!busy_)).
    int composite_deferrals = 0;
    int sync_fetches = 0;
    int burst_starts = 0;
  };

  ScenarioDriver(odapps::TestBed* bed, Scenario scenario, uint64_t seed);

  ScenarioDriver(const ScenarioDriver&) = delete;
  ScenarioDriver& operator=(const ScenarioDriver&) = delete;

  // Schedules every phase relative to the simulator's current time.
  void Start();
  // Stops driving: no new work is issued; in-flight requests complete.
  void Stop();

  const Counters& counters() const { return counters_; }

 private:
  // Rate-channel indices (web/map/speech share the drive loop).
  enum Channel { kWeb = 0, kMap = 1, kSpeech = 2, kChannels = 3 };

  void Activate(const ScenarioPhase& phase);
  void DriveVideo();
  void DriveRate(Channel channel);
  void DriveComposite();
  void DriveSync();
  void EnsureBurst(double switch_probability, odsim::SimTime until);

  odapps::TestBed* bed_;
  Scenario scenario_;
  odutil::Rng rng_;
  std::unique_ptr<odapps::CompositeApp> composite_;
  std::unique_ptr<odapps::BurstyWorkload> bursty_;

  bool running_ = false;
  Counters counters_;

  odsim::SimTime video_until_;
  bool video_chain_ = false;
  int next_clip_ = 0;

  std::array<odsim::SimTime, kChannels> until_ = {};
  std::array<double, kChannels> per_minute_ = {0.0, 0.0, 0.0};
  std::array<bool, kChannels> chain_ = {false, false, false};
  std::array<int, kChannels> next_object_ = {0, 0, 0};

  odsim::SimTime composite_until_;
  odsim::SimDuration composite_period_ = odsim::SimDuration::Seconds(25);
  bool composite_chain_ = false;

  odsim::SimTime sync_until_;
  odsim::SimDuration sync_period_ = odsim::SimDuration::Seconds(60);
  bool sync_chain_ = false;

  odsim::SimTime burst_until_;
  bool burst_running_ = false;
};

// Counters handed back from a scenario-driven goal run (the driver lives
// inside RunGoalScenario; this is how its record escapes).
struct ScenarioWorkloadStats {
  ScenarioDriver::Counters counters;
};

// Installs `scenario` as the goal run's workload: sets
// GoalScenarioOptions::workload_factory to construct and start a
// ScenarioDriver on the run's TestBed (seeded from options->seed, so set
// the seed first), and — when `derive_environment` is true — appends the
// scenario's gap windows (DerivedFaultPlan) to options->fault_plan so the
// behavior and its environment arrive as one artifact.  Pass
// derive_environment = false when the caller already folded the gap
// windows into the plan (the scenario-mode chaos generator does).
void ApplyScenarioWorkload(const Scenario& scenario,
                           odapps::GoalScenarioOptions* options,
                           std::shared_ptr<ScenarioWorkloadStats> stats = nullptr,
                           bool derive_environment = true);

}  // namespace odscenario

#endif  // SRC_SCENARIO_DRIVER_H_
