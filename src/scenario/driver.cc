#include "src/scenario/driver.h"

#include <algorithm>
#include <utility>

#include "src/apps/data_objects.h"
#include "src/odyssey/warden.h"
#include "src/util/check.h"

namespace odscenario {

namespace {
// Background-sync shape: a small annotated request, a few KB of state, a
// sliver of server time — the cost is dominated by waking the interface.
constexpr size_t kSyncRequestBytes = 256;
constexpr size_t kSyncReplyBytes = 4096;
constexpr int kSyncServerMillis = 20;
// How long a deferred start waits before re-checking that the app(s) it
// needs are free (composite needs all three; a rate or video channel polls
// when another holder — composite, burst — has its app).
constexpr int kBusyPollMillis = 250;
}  // namespace

ScenarioDriver::ScenarioDriver(odapps::TestBed* bed, Scenario scenario,
                               uint64_t seed)
    : bed_(bed), scenario_(std::move(scenario)), rng_(seed ^ 0x5ceaULL) {
  OD_CHECK(bed != nullptr);
}

void ScenarioDriver::Start() {
  OD_CHECK(!running_);
  running_ = true;
  odsim::SimTime start = bed_->sim().Now();
  for (const ScenarioPhase& phase : scenario_.phases) {
    bed_->sim().ScheduleAt(start + phase.at,
                           [this, phase] { Activate(phase); });
  }
}

void ScenarioDriver::Stop() {
  running_ = false;
  if (burst_running_) {
    bursty_->Stop();
    burst_running_ = false;
  }
  if (composite_ != nullptr) {
    composite_->Stop();
  }
}

void ScenarioDriver::Activate(const ScenarioPhase& phase) {
  if (!running_) {
    return;
  }
  odsim::SimTime now = bed_->sim().Now();
  odsim::SimTime end = now + phase.duration;
  switch (phase.kind) {
    case PhaseKind::kVideo:
      video_until_ = std::max(video_until_, end);
      DriveVideo();
      break;
    case PhaseKind::kWeb:
    case PhaseKind::kMap:
    case PhaseKind::kSpeech: {
      Channel channel = phase.kind == PhaseKind::kWeb   ? kWeb
                        : phase.kind == PhaseKind::kMap ? kMap
                                                        : kSpeech;
      // Overlapping same-kind phases: the later activation's rate and
      // window win (documented in scenario.h's grammar notes).
      until_[channel] = std::max(until_[channel], end);
      per_minute_[channel] = phase.param;
      if (!chain_[channel]) {
        DriveRate(channel);
      }
      break;
    }
    case PhaseKind::kComposite:
      composite_until_ = std::max(composite_until_, end);
      composite_period_ = odsim::SimDuration::Seconds(phase.param);
      if (composite_ == nullptr) {
        composite_ = std::make_unique<odapps::CompositeApp>(
            &bed_->sim(), &bed_->speech(), &bed_->web(), &bed_->map());
      }
      if (!composite_chain_) {
        DriveComposite();
      }
      break;
    case PhaseKind::kSync:
      sync_until_ = std::max(sync_until_, end);
      sync_period_ = odsim::SimDuration::Seconds(phase.param);
      if (!sync_chain_) {
        DriveSync();
      }
      break;
    case PhaseKind::kBurst:
      EnsureBurst(phase.param, end);
      break;
    case PhaseKind::kIdle:
    case PhaseKind::kGap:
      // Idle is the absence of behavior; gaps travel as fault windows
      // (DerivedFaultPlan), not driver work.
      break;
  }
}

void ScenarioDriver::DriveVideo() {
  if (!running_ || video_chain_ || bed_->sim().Now() >= video_until_) {
    return;
  }
  if (bed_->video().playing()) {
    // Another holder (the bursty workload) has the player; poll until it
    // frees rather than silently dropping the rest of the phase.
    bed_->sim().Schedule(odsim::SimDuration::Millis(kBusyPollMillis),
                         [this] { DriveVideo(); });
    return;
  }
  video_chain_ = true;
  const auto& clips = odapps::StandardVideoClips();
  const odapps::VideoClip& clip =
      clips[static_cast<size_t>(next_clip_++ % 4)];
  odsim::SimDuration remaining = video_until_ - bed_->sim().Now();
  ++counters_.video_segments;
  bed_->video().PlaySegment(clip, remaining, [this] {
    video_chain_ = false;
    DriveVideo();
  });
}

void ScenarioDriver::DriveRate(Channel channel) {
  if (!running_ || bed_->sim().Now() >= until_[channel]) {
    chain_[channel] = false;
    return;
  }
  bool busy = channel == kWeb   ? bed_->web().busy()
              : channel == kMap ? bed_->map().busy()
                                : bed_->speech().busy();
  if (busy) {
    // Another holder (composite, burst) has the app; poll until it frees
    // rather than silently dropping the rest of the phase.  The app's own
    // busy flag keeps stacked polls from double-driving it.
    chain_[channel] = true;
    bed_->sim().Schedule(odsim::SimDuration::Millis(kBusyPollMillis),
                         [this, channel] { DriveRate(channel); });
    return;
  }
  chain_[channel] = true;
  odsim::SimTime unit_start = bed_->sim().Now();
  odsim::SimDuration spacing =
      odsim::SimDuration::Seconds(60.0 / per_minute_[channel]);
  auto next = [this, channel, unit_start, spacing] {
    odsim::SimTime at = unit_start + spacing;
    if (at <= bed_->sim().Now()) {
      DriveRate(channel);
    } else {
      bed_->sim().ScheduleAt(at, [this, channel] { DriveRate(channel); });
    }
  };
  int index = next_object_[channel]++ % 4;
  switch (channel) {
    case kWeb: {
      ++counters_.pages;
      const auto& images = odapps::StandardWebImages();
      bed_->web().BrowsePage(images[static_cast<size_t>(index)],
                             std::move(next));
      break;
    }
    case kMap: {
      ++counters_.maps;
      const auto& maps = odapps::StandardMaps();
      bed_->map().ViewMap(maps[static_cast<size_t>(index)], std::move(next));
      break;
    }
    default: {
      ++counters_.utterances;
      const auto& utterances = odapps::StandardUtterances();
      bed_->speech().Recognize(utterances[static_cast<size_t>(index)],
                               std::move(next));
      break;
    }
  }
}

void ScenarioDriver::DriveComposite() {
  if (!running_ || bed_->sim().Now() >= composite_until_) {
    composite_chain_ = false;
    return;
  }
  // The composite iteration drives speech/web/map without busy guards, so
  // it must not start while another channel holds one of them.
  if (composite_->running() || bed_->speech().busy() || bed_->web().busy() ||
      bed_->map().busy()) {
    composite_chain_ = true;
    ++counters_.composite_deferrals;
    bed_->sim().Schedule(odsim::SimDuration::Millis(kBusyPollMillis),
                         [this] { DriveComposite(); });
    return;
  }
  composite_chain_ = true;
  odsim::SimTime unit_start = bed_->sim().Now();
  ++counters_.composite_iterations;
  composite_->RunIterations(1, [this, unit_start] {
    odsim::SimTime at = unit_start + composite_period_;
    if (at <= bed_->sim().Now()) {
      DriveComposite();
    } else {
      bed_->sim().ScheduleAt(at, [this] { DriveComposite(); });
    }
  });
}

void ScenarioDriver::DriveSync() {
  if (!running_ || bed_->sim().Now() >= sync_until_) {
    sync_chain_ = false;
    return;
  }
  sync_chain_ = true;
  odsim::SimTime unit_start = bed_->sim().Now();
  ++counters_.sync_fetches;
  odyssey::Warden* warden = bed_->viceroy().FindWarden("web");
  OD_CHECK(warden != nullptr);
  warden->Fetch(kSyncRequestBytes, kSyncReplyBytes,
                odsim::SimDuration::Millis(kSyncServerMillis),
                [this, unit_start] {
                  odsim::SimTime at = unit_start + sync_period_;
                  if (at <= bed_->sim().Now()) {
                    DriveSync();
                  } else {
                    bed_->sim().ScheduleAt(at, [this] { DriveSync(); });
                  }
                });
}

void ScenarioDriver::EnsureBurst(double switch_probability,
                                 odsim::SimTime until) {
  burst_until_ = std::max(burst_until_, until);
  if (!burst_running_) {
    odapps::BurstyWorkload::Config config;
    config.switch_probability = switch_probability;
    bursty_ = std::make_unique<odapps::BurstyWorkload>(
        &bed_->sim(), &bed_->video(), &bed_->speech(), &bed_->web(),
        &bed_->map(), &rng_, config);
    bursty_->Start();
    burst_running_ = true;
    ++counters_.burst_starts;
  }
  bed_->sim().ScheduleAt(burst_until_, [this] {
    if (burst_running_ && bed_->sim().Now() >= burst_until_) {
      bursty_->Stop();
      burst_running_ = false;
    }
  });
}

void ApplyScenarioWorkload(const Scenario& scenario,
                           odapps::GoalScenarioOptions* options,
                           std::shared_ptr<ScenarioWorkloadStats> stats,
                           bool derive_environment) {
  OD_CHECK(options != nullptr);
  if (derive_environment) {
    odfault::FaultPlan derived = scenario.DerivedFaultPlan();
    options->fault_plan.events.insert(options->fault_plan.events.end(),
                                      derived.events.begin(),
                                      derived.events.end());
  }
  const uint64_t seed = options->seed;
  options->workload_factory = [scenario, seed,
                               stats](odapps::TestBed& bed) {
    auto driver = std::make_shared<ScenarioDriver>(&bed, scenario, seed);
    driver->Start();
    return std::function<void()>([driver, stats] {
      driver->Stop();
      if (stats != nullptr) {
        stats->counters = driver->counters();
      }
    });
  };
}

}  // namespace odscenario
