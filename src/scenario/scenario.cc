#include "src/scenario/scenario.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace odscenario {
namespace {

struct PhaseInfo {
  PhaseKind kind;
  const char* name;
  bool takes_param;
  double default_param;
};

constexpr PhaseInfo kPhases[] = {
    {PhaseKind::kVideo, "video", false, 0.0},
    {PhaseKind::kWeb, "web", true, 5.0},
    {PhaseKind::kMap, "map", true, 5.0},
    {PhaseKind::kSpeech, "speech", true, 5.0},
    {PhaseKind::kComposite, "composite", true, 25.0},
    {PhaseKind::kBurst, "burst", true, 0.1},
    {PhaseKind::kSync, "sync", true, 60.0},
    {PhaseKind::kIdle, "idle", false, 0.0},
    {PhaseKind::kGap, "gap", true, 0.0},
};

const PhaseInfo* FindPhaseKind(const std::string& name) {
  for (const PhaseInfo& info : kPhases) {
    if (name == info.name) {
      return &info;
    }
  }
  return nullptr;
}

const PhaseInfo& Info(PhaseKind kind) {
  for (const PhaseInfo& info : kPhases) {
    if (info.kind == kind) {
      return info;
    }
  }
  return kPhases[0];  // Unreachable: kPhases covers the enum.
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

bool ParamValid(PhaseKind kind, double param) {
  switch (kind) {
    case PhaseKind::kWeb:
    case PhaseKind::kMap:
    case PhaseKind::kSpeech:
    case PhaseKind::kComposite:
    case PhaseKind::kSync:
      return param > 0.0;
    case PhaseKind::kBurst:
      return param > 0.0 && param < 1.0;
    case PhaseKind::kGap:
      return param >= 0.0 && param < 1.0;
    case PhaseKind::kVideo:
    case PhaseKind::kIdle:
      return true;
  }
  return false;
}

// %g keeps "0.1" as "0.1" and "30" as "30", matching FaultPlan's canonical
// rendering.
std::string FormatNumber(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

bool ValidName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

// `line` / `column` locate the phase's first character in the original
// spec; sub-token failures offset the column to the token itself.
bool ParsePhase(const std::string& text, int line, int column,
                ScenarioPhase* phase, std::string* error) {
  auto fail = [&](size_t offset, const std::string& token,
                  const std::string& why) {
    if (error != nullptr) {
      *error = odfault::SpecError(line, column + static_cast<int>(offset),
                                  token, why);
    }
    return false;
  };
  size_t at_pos = text.find('@');
  if (at_pos == std::string::npos) {
    return fail(0, text, "expected kind@start+duration[=param]");
  }
  const std::string kind_text = text.substr(0, at_pos);
  const PhaseInfo* info = FindPhaseKind(kind_text);
  if (info == nullptr) {
    return fail(0, kind_text,
                "unknown phase kind "
                "(video|web|map|speech|composite|burst|sync|idle|gap)");
  }
  size_t plus_pos = text.find('+', at_pos + 1);
  if (plus_pos == std::string::npos) {
    return fail(at_pos + 1, text.substr(at_pos + 1), "expected '+duration'");
  }
  size_t eq_pos = text.find('=', plus_pos + 1);
  double start = 0.0;
  double duration = 0.0;
  const std::string start_text = text.substr(at_pos + 1, plus_pos - at_pos - 1);
  if (!ParseDouble(start_text, &start) || start < 0.0) {
    return fail(at_pos + 1, start_text,
                "start must be a nonnegative number of seconds");
  }
  const std::string duration_text =
      eq_pos == std::string::npos
          ? text.substr(plus_pos + 1)
          : text.substr(plus_pos + 1, eq_pos - plus_pos - 1);
  if (!ParseDouble(duration_text, &duration) || duration <= 0.0) {
    return fail(plus_pos + 1, duration_text,
                "duration must be a positive number of seconds");
  }
  double param = info->default_param;
  if (eq_pos != std::string::npos) {
    const std::string param_text = text.substr(eq_pos + 1);
    if (!info->takes_param) {
      return fail(eq_pos, "=" + param_text,
                  std::string(info->name) + " takes no param");
    }
    if (!ParseDouble(param_text, &param)) {
      return fail(eq_pos + 1, param_text, "param must be a number");
    }
    if (!ParamValid(info->kind, param)) {
      return fail(eq_pos + 1, param_text,
                  "param out of range for " + std::string(info->name));
    }
  }
  phase->kind = info->kind;
  phase->at = odsim::SimDuration::Seconds(start);
  phase->duration = odsim::SimDuration::Seconds(duration);
  phase->param = param;
  return true;
}

}  // namespace

const char* PhaseKindName(PhaseKind kind) { return Info(kind).name; }

odsim::SimDuration Scenario::Duration() const {
  odsim::SimDuration end = odsim::SimDuration::Zero();
  for (const ScenarioPhase& phase : phases) {
    end = std::max(end, phase.at + phase.duration);
  }
  return end;
}

std::string Scenario::ToString() const {
  if (phases.empty()) {
    return "";
  }
  std::string spec;
  if (!name.empty()) {
    spec = name + ": ";
  }
  bool first = true;
  for (const ScenarioPhase& phase : phases) {
    if (!first) {
      spec += ';';
    }
    first = false;
    spec += PhaseKindName(phase.kind);
    spec += '@';
    spec += FormatNumber(phase.at.seconds());
    spec += '+';
    spec += FormatNumber(phase.duration.seconds());
    if (Info(phase.kind).takes_param) {
      spec += '=';
      spec += FormatNumber(phase.param);
    }
  }
  return spec;
}

bool Scenario::Parse(const std::string& spec, Scenario* scenario,
                     std::string* error) {
  Scenario parsed;
  bool name_allowed = true;
  size_t pos = 0;
  int line = 1;
  int column = 1;
  while (pos <= spec.size()) {
    size_t sep = spec.find_first_of(";\n", pos);
    if (sep == std::string::npos) {
      sep = spec.size();
    }
    std::string piece = spec.substr(pos, sep - pos);
    size_t base_column = static_cast<size_t>(column);
    // '#' starts a comment running to the end of the line; it also swallows
    // any ';' after it on that line, so scan ahead when one appears.
    size_t hash = piece.find('#');
    if (hash != std::string::npos) {
      size_t eol = spec.find('\n', pos);
      if (eol == std::string::npos) {
        eol = spec.size();
      }
      piece = piece.substr(0, hash);
      sep = eol;
    }
    size_t lead = piece.find_first_not_of(" \t");
    if (lead == std::string::npos) {
      piece.clear();
    } else {
      piece = piece.substr(lead, piece.find_last_not_of(" \t") - lead + 1);
      base_column += lead;
    }
    if (!piece.empty() && name_allowed) {
      // A leading "name:" tag may share its piece with the first phase.
      size_t colon = piece.find(':');
      if (colon != std::string::npos &&
          piece.find_first_of("@+=") > colon) {
        const std::string name = piece.substr(0, colon);
        if (!ValidName(name)) {
          if (error != nullptr) {
            *error = odfault::SpecError(
                line, static_cast<int>(base_column), name,
                "scenario name must be letters, digits, or '_'");
          }
          return false;
        }
        parsed.name = name;
        size_t rest = piece.find_first_not_of(" \t", colon + 1);
        if (rest == std::string::npos) {
          piece.clear();
        } else {
          base_column += rest;
          piece = piece.substr(rest);
        }
      }
      name_allowed = false;
    }
    if (!piece.empty()) {
      ScenarioPhase phase;
      if (!ParsePhase(piece, line, static_cast<int>(base_column), &phase,
                      error)) {
        return false;
      }
      parsed.phases.push_back(phase);
      name_allowed = false;
    }
    if (sep >= spec.size()) {
      break;
    }
    if (spec[sep] == '\n') {
      ++line;
      column = 1;
    } else {
      column += static_cast<int>(sep - pos) + 1;
    }
    pos = sep + 1;
  }
  *scenario = std::move(parsed);
  return true;
}

odfault::FaultPlan Scenario::DerivedFaultPlan() const {
  odfault::FaultPlan plan;
  for (const ScenarioPhase& phase : phases) {
    if (phase.kind != PhaseKind::kGap) {
      continue;
    }
    odfault::FaultEvent event;
    event.at = phase.at;
    event.duration = phase.duration;
    if (phase.param > 0.0) {
      event.kind = odfault::FaultKind::kBandwidth;
      event.magnitude = phase.param;
    } else {
      event.kind = odfault::FaultKind::kOutage;
      event.magnitude = 0.0;
    }
    plan.events.push_back(event);
  }
  return plan;
}

bool Scenario::ActiveAt(odsim::SimDuration t) const {
  for (const ScenarioPhase& phase : phases) {
    if (phase.kind == PhaseKind::kIdle || phase.kind == PhaseKind::kGap) {
      continue;
    }
    if (t >= phase.at && t < phase.at + phase.duration) {
      return true;
    }
  }
  return false;
}

bool Scenario::CoverageAt(odsim::SimDuration t) const {
  for (const ScenarioPhase& phase : phases) {
    if (phase.kind == PhaseKind::kGap && t >= phase.at &&
        t < phase.at + phase.duration) {
      return false;
    }
  }
  return true;
}

ScenarioBuilder::ScenarioBuilder(std::string name) {
  scenario_.name = std::move(name);
}

ScenarioBuilder& ScenarioBuilder::Add(PhaseKind kind, double start,
                                      double duration, double param) {
  ScenarioPhase phase;
  phase.kind = kind;
  phase.at = odsim::SimDuration::Seconds(start);
  phase.duration = odsim::SimDuration::Seconds(duration);
  phase.param = param;
  scenario_.phases.push_back(phase);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Video(double start, double duration) {
  return Add(PhaseKind::kVideo, start, duration, 0.0);
}
ScenarioBuilder& ScenarioBuilder::Web(double start, double duration,
                                      double pages_per_minute) {
  return Add(PhaseKind::kWeb, start, duration, pages_per_minute);
}
ScenarioBuilder& ScenarioBuilder::Map(double start, double duration,
                                      double maps_per_minute) {
  return Add(PhaseKind::kMap, start, duration, maps_per_minute);
}
ScenarioBuilder& ScenarioBuilder::Speech(double start, double duration,
                                         double utterances_per_minute) {
  return Add(PhaseKind::kSpeech, start, duration, utterances_per_minute);
}
ScenarioBuilder& ScenarioBuilder::Composite(double start, double duration,
                                            double period_seconds) {
  return Add(PhaseKind::kComposite, start, duration, period_seconds);
}
ScenarioBuilder& ScenarioBuilder::Burst(double start, double duration,
                                        double switch_probability) {
  return Add(PhaseKind::kBurst, start, duration, switch_probability);
}
ScenarioBuilder& ScenarioBuilder::Sync(double start, double duration,
                                       double period_seconds) {
  return Add(PhaseKind::kSync, start, duration, period_seconds);
}
ScenarioBuilder& ScenarioBuilder::Idle(double start, double duration) {
  return Add(PhaseKind::kIdle, start, duration, 0.0);
}
ScenarioBuilder& ScenarioBuilder::Gap(double start, double duration,
                                      double bandwidth_fraction) {
  return Add(PhaseKind::kGap, start, duration, bandwidth_fraction);
}

}  // namespace odscenario
