// Deterministic user-behavior scenarios (the ARENA-style workload DSL).
//
// A Scenario is a seeded, reproducible timeline of user behavior — bursty
// interaction, commuter connectivity, background sync, mixed multi-app
// days — that drives the existing applications through the simulator.  It
// mirrors FaultPlan's design: a builder API plus a compact text grammar
// that rides in a command-line flag and lands verbatim in artifact
// provenance:
//
//   phase    := kind '@' start '+' duration [ '=' param ]
//   scenario := [ name ':' ] phase ( ( ';' | newline ) phase )*
//
// with start/duration in (fractional) seconds relative to scenario start,
// '#' starting a to-end-of-line comment, and an optional leading
// "name:" tag.  Example:
//
//   "commuter_day: video@0+240;gap@180+120;web@300+180=6"
//
// plays video for the first four minutes, loses coverage during
// [180 s, 300 s) (the tunnel), and browses six pages a minute during
// [300 s, 480 s).  Phase kinds and param semantics:
//
//   video      foreground video playback; no param
//   web        page fetches; param = pages per minute (default 5)
//   map        map fetches; param = maps per minute (default 5)
//   speech     utterances; param = utterances per minute (default 5)
//   composite  the four-app composite iteration; param = period seconds
//              (default 25)
//   burst      the Section 5.4 stochastic bursty workload; param = per-app
//              per-minute switch probability in (0, 1) (default 0.1)
//   sync       background sync fetches; param = period seconds (default 60)
//   idle       nothing happens; no param (device-inactivity window)
//   gap        coverage gap; param = fraction of nominal bandwidth kept in
//              [0, 1) (default 0 = full outage)
//
// A gap is *environment*, not behavior: DerivedFaultPlan() emits it as a
// matched odfault window (outage, or bandwidth at the kept fraction), so
// the behavior timeline and the disturbance plan it implies are one
// artifact — the commuter's tunnel is the same object in both layers.
//
// ToString() renders the canonical spelling; Parse(ToString()) round-trips.
// Parse errors carry line + column + offending token (odfault::SpecError),
// identical in shape to fault-plan diagnostics.

#ifndef SRC_SCENARIO_SCENARIO_H_
#define SRC_SCENARIO_SCENARIO_H_

#include <string>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/sim/time.h"

namespace odscenario {

enum class PhaseKind {
  kVideo,
  kWeb,
  kMap,
  kSpeech,
  kComposite,
  kBurst,
  kSync,
  kIdle,
  kGap,
};

// Grammar keyword ("video", "web", "map", "speech", "composite", "burst",
// "sync", "idle", "gap").
const char* PhaseKindName(PhaseKind kind);

struct ScenarioPhase {
  PhaseKind kind = PhaseKind::kIdle;
  // Window start, relative to scenario start.
  odsim::SimDuration at = odsim::SimDuration::Zero();
  odsim::SimDuration duration = odsim::SimDuration::Zero();
  // Kind-specific; see the grammar comment above.
  double param = 0.0;
};

struct Scenario {
  std::string name;
  std::vector<ScenarioPhase> phases;

  bool empty() const { return phases.empty(); }

  // End of the latest phase window — the scenario's natural length.
  odsim::SimDuration Duration() const;

  // Canonical spelling; round-trips through Parse.  Empty scenario -> "".
  std::string ToString() const;

  // Parses the text grammar ('#' comments, ';' or newline separators,
  // optional leading "name:").  On failure returns false and, when `error`
  // is non-null, a "line L, col C: <why> near '<token>'" diagnostic.  An
  // empty spec parses to an empty scenario.
  static bool Parse(const std::string& spec, Scenario* scenario,
                    std::string* error);

  // The environment the behavior implies: every gap phase as a matched
  // odfault window (outage when the kept fraction is 0, bandwidth
  // otherwise), in phase order.
  odfault::FaultPlan DerivedFaultPlan() const;

  // Whether any behavior phase (anything but idle/gap) covers `t` —
  // fleet-scale per-device activity gating.
  bool ActiveAt(odsim::SimDuration t) const;
  // Whether the device has coverage at `t` (no gap window covers it).
  bool CoverageAt(odsim::SimDuration t) const;
};

// Fluent construction mirroring the grammar; times in seconds.
//
//   Scenario s = ScenarioBuilder("commuter_day")
//                    .Video(0, 240).Gap(180, 120).Web(300, 180, 6).Build();
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(std::string name = "");

  ScenarioBuilder& Video(double start, double duration);
  ScenarioBuilder& Web(double start, double duration,
                       double pages_per_minute = 5.0);
  ScenarioBuilder& Map(double start, double duration,
                       double maps_per_minute = 5.0);
  ScenarioBuilder& Speech(double start, double duration,
                          double utterances_per_minute = 5.0);
  ScenarioBuilder& Composite(double start, double duration,
                             double period_seconds = 25.0);
  ScenarioBuilder& Burst(double start, double duration,
                         double switch_probability = 0.1);
  ScenarioBuilder& Sync(double start, double duration,
                        double period_seconds = 60.0);
  ScenarioBuilder& Idle(double start, double duration);
  ScenarioBuilder& Gap(double start, double duration,
                       double bandwidth_fraction = 0.0);

  Scenario Build() const { return scenario_; }

 private:
  ScenarioBuilder& Add(PhaseKind kind, double start, double duration,
                       double param);
  Scenario scenario_;
};

}  // namespace odscenario

#endif  // SRC_SCENARIO_SCENARIO_H_
