// The committed scenario library: six named, deterministic user-behavior
// timelines spanning the shapes ARENA argues energy claims must cover —
// commuting (coverage gaps), bursty interaction, background sync, media
// consumption, office multi-app mixes, and cafe browsing.  `odbench run
// scenario_sweep` runs all of them (or one, via --scenario NAME); the
// chaos soak draws scenario-derived fault plans from them; fleet-scale
// simulation assigns them per device (seed-indexed) for behavioral
// diversity.

#ifndef SRC_SCENARIO_LIBRARY_H_
#define SRC_SCENARIO_LIBRARY_H_

#include <string>
#include <vector>

#include "src/scenario/scenario.h"

namespace odscenario {

// All library scenarios, in a fixed, documented order (stable across
// platforms: seed-indexed assignment depends on it).
const std::vector<Scenario>& ScenarioLibrary();

// Lookup by name; nullptr when absent.
const Scenario* FindScenario(const std::string& name);

// The library names, in library order (for --scenario validation messages).
std::vector<std::string> ScenarioNames();

}  // namespace odscenario

#endif  // SRC_SCENARIO_LIBRARY_H_
