#include "src/scenario/library.h"

namespace odscenario {

const std::vector<Scenario>& ScenarioLibrary() {
  static const std::vector<Scenario> kLibrary = [] {
    std::vector<Scenario> library;

    // The commute: podcast video on the bus, a tunnel (total outage), then
    // arrival — browsing, a voice exchange, a weak-coverage stretch at the
    // office edge, and maps to find the meeting room.  Background sync
    // ticks the whole way.
    library.push_back(ScenarioBuilder("commuter_day")
                          .Video(0, 240)
                          .Gap(180, 120)
                          .Web(300, 180, 6)
                          .Speech(420, 120, 4)
                          .Gap(540, 60, 0.3)
                          .Map(600, 180)
                          .Sync(0, 900, 120)
                          .Build());

    // Pure Section 5.4 burstiness: apps flip on and off each minute while
    // a slow sync runs underneath.
    library.push_back(ScenarioBuilder("bursty_morning")
                          .Burst(0, 600)
                          .Sync(0, 600, 150)
                          .Build());

    // The phone in the bag: nothing in the foreground, one small sync
    // fetch a minute.  Deliberately adaptation-free — the
    // schedule-insensitive trace rung the fig19 golden pins.
    library.push_back(ScenarioBuilder("background_sync")
                          .Idle(0, 600)
                          .Sync(0, 600, 60)
                          .Build());

    // An evening of video with a mid-show browse for the cast list.
    library.push_back(ScenarioBuilder("video_evening")
                          .Video(0, 720)
                          .Web(300, 120, 3)
                          .Build());

    // The office mix: the paper's composite iteration on its 25 s cadence
    // with a long video window riding along — the goal scenario's workload
    // shape, expressed in the DSL.
    library.push_back(ScenarioBuilder("office_mix")
                          .Composite(0, 600)
                          .Video(120, 360)
                          .Build());

    // Cafe wifi: heavy browsing and maps, a brief weak-signal dip when the
    // espresso machine runs, then a voice call, sync underneath.
    library.push_back(ScenarioBuilder("coffee_shop")
                          .Web(0, 300, 8)
                          .Map(120, 240, 4)
                          .Gap(280, 40, 0.2)
                          .Speech(360, 120, 6)
                          .Sync(0, 600, 90)
                          .Build());

    return library;
  }();
  return kLibrary;
}

const Scenario* FindScenario(const std::string& name) {
  for (const Scenario& scenario : ScenarioLibrary()) {
    if (scenario.name == name) {
      return &scenario;
    }
  }
  return nullptr;
}

std::vector<std::string> ScenarioNames() {
  std::vector<std::string> names;
  for (const Scenario& scenario : ScenarioLibrary()) {
    names.push_back(scenario.name);
  }
  return names;
}

}  // namespace odscenario
