#include "src/serve/shared_service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/check.h"

namespace odserve {

const char* ServeOutcomeName(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kServed:
      return "served";
    case ServeOutcome::kCacheHit:
      return "cache-hit";
    case ServeOutcome::kRejected:
      return "rejected";
  }
  return "unknown";
}

SharedService::SharedService(odsim::Simulator* sim, std::string name,
                             ServiceConfig config)
    : sim_(sim), name_(std::move(name)), config_(config) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(config.speed_factor > 0.0);
  OD_CHECK(config.max_queue >= 0);
}

int SharedService::OpenSession(std::string client_name) {
  sessions_.push_back(std::move(client_name));
  session_completed_.push_back(0);
  return static_cast<int>(sessions_.size()) - 1;
}

int SharedService::SessionCompleted(int session) const {
  OD_CHECK(session >= 0 && session < static_cast<int>(sessions_.size()));
  return session_completed_[session];
}

void SharedService::Submit(int session, odsim::SimDuration work,
                           odsim::EventFn on_done) {
  OD_CHECK(work >= odsim::SimDuration::Zero());
  OD_CHECK(session >= 0 && session < static_cast<int>(sessions_.size()));
  // Unkeyed submits predate admission control and carry no reject channel;
  // a bounded service must be driven through SubmitKeyed.
  OD_CHECK_MSG(config_.max_queue == 0,
               "unkeyed Submit on a service with admission control");
  Request request;
  request.work = work * (1.0 / config_.speed_factor);
  request.submitted = sim_->Now();
  request.session = session;
  request.on_done = std::move(on_done);
  queue_.push_back(std::move(request));
  if (!busy_) {
    StartNext();
  }
}

void SharedService::SubmitKeyed(int session, const std::string& key,
                                odsim::SimDuration work, ServeFn on_done) {
  OD_CHECK(work >= odsim::SimDuration::Zero());
  OD_CHECK(session >= 0 && session < static_cast<int>(sessions_.size()));
  // Cache first: distilled content that already exists is served without
  // touching the compute queue (and regardless of a stalled distiller).
  if (config_.cache_capacity > 0 && CacheLookup(key)) {
    ++cache_hits_;
    ++completed_;
    ++session_completed_[session];
    if (on_done) {
      on_done(ServeOutcome::kCacheHit);
    }
    return;
  }
  // Batch: identical work already queued or in service absorbs this
  // request; one unit of compute completes every waiter.
  if (config_.batch_same_key) {
    if (Request* target = FindBatchTarget(key)) {
      ++batch_joins_;
      target->joined.push_back(Waiter{session, sim_->Now(), std::move(on_done)});
      return;
    }
  }
  // Admission: a full queue refuses new compute outright.
  if (config_.max_queue > 0 && queue_depth() >= config_.max_queue) {
    ++rejected_;
    if (on_done) {
      on_done(ServeOutcome::kRejected);
    }
    return;
  }
  Request request;
  request.work = work * (1.0 / config_.speed_factor);
  request.submitted = sim_->Now();
  request.session = session;
  request.keyed = true;
  request.key = key;
  request.on_served = std::move(on_done);
  queue_.push_back(std::move(request));
  if (!busy_) {
    StartNext();
  }
}

void SharedService::SetStalled(bool stalled) {
  if (stalled_ == stalled) {
    return;
  }
  stalled_ = stalled;
  if (!stalled_ && !busy_) {
    StartNext();  // Drain, in submission order, whatever queued while wedged.
  }
}

SharedService::Request* SharedService::FindBatchTarget(const std::string& key) {
  if (busy_ && in_service_keyed_ && in_service_key_ == key) {
    return &in_service_;
  }
  for (Request& request : queue_) {
    if (request.keyed && request.key == key) {
      return &request;
    }
  }
  return nullptr;
}

void SharedService::StartNext() {
  if (queue_.empty() || stalled_) {
    busy_ = false;
    in_service_keyed_ = false;
    return;
  }
  busy_ = true;
  in_service_ = std::move(queue_.front());
  queue_.pop_front();
  in_service_keyed_ = in_service_.keyed;
  in_service_key_ = in_service_.key;
  total_busy_seconds_ += in_service_.work.seconds();
  RecordWait(in_service_.submitted, sim_->Now());
  sim_->Schedule(in_service_.work, [this] {
    // Claim the finished request before completions run: a completion
    // callback may submit new work (or try to join a batch), and it must
    // not attach to a request that has already been served.  busy_ stays
    // true until the trailing StartNext so a resubmitting callback queues
    // behind the dequeue loop instead of starting service mid-event —
    // the historical RemoteServer reentrancy contract.
    Request done = std::move(in_service_);
    in_service_keyed_ = false;
    ++completed_;
    ++session_completed_[done.session];
    if (done.keyed && config_.cache_capacity > 0) {
      CacheInsert(done.key);
    }
    odsim::SimTime now = sim_->Now();
    for (const Waiter& waiter : done.joined) {
      RecordWait(waiter.submitted, now);
      ++completed_;
      ++session_completed_[waiter.session];
    }
    if (done.on_done) {
      done.on_done();
    }
    if (done.on_served) {
      done.on_served(ServeOutcome::kServed);
    }
    for (Waiter& waiter : done.joined) {
      if (waiter.on_done) {
        waiter.on_done(ServeOutcome::kServed);
      }
    }
    StartNext();
  });
}

bool SharedService::CacheLookup(const std::string& key) {
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) {
    return false;
  }
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  return true;
}

void SharedService::CacheInsert(const std::string& key) {
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    // Re-distilled content (e.g. a retransmitted request recomputed before
    // the first insert): refresh recency only.
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  cache_lru_.push_front(key);
  cache_index_[key] = cache_lru_.begin();
  if (cache_index_.size() > config_.cache_capacity) {
    cache_index_.erase(cache_lru_.back());
    cache_lru_.pop_back();
    ++cache_evictions_;
  }
}

void SharedService::RecordWait(odsim::SimTime submitted, odsim::SimTime started) {
  waits_.push_back((started - submitted).seconds());
}

double SharedService::MeanWaitSeconds() const {
  if (waits_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double w : waits_) {
    sum += w;
  }
  return sum / static_cast<double>(waits_.size());
}

double SharedService::WaitPercentileSeconds(double p) const {
  OD_CHECK(p >= 0.0 && p <= 100.0);
  if (waits_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = waits_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least p% of mass at or below.
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank > 0) {
    --rank;
  }
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace odserve
