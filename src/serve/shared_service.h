// Shared simulated service layer.
//
// The paper's testbed gives every warden a dedicated server, so a single
// client never contends with anyone.  A production deployment is the
// opposite: thousands of devices share a handful of distillation servers.
// SharedService is that server model — one FIFO compute queue multiplexing
// many client *sessions* inside one odsim::Simulator event loop, with three
// production-scale mechanisms layered on top:
//
//   - admission control: a bounded queue; a submit that would exceed it is
//     rejected immediately, and the typed reject flows back through
//     odnet::RpcStatus so viceroys degrade deliberately instead of piling
//     retries onto an overloaded server;
//   - request batching: keyed submits for work already queued or in
//     service join that request instead of enqueueing duplicate compute
//     (the same map tile distilled once, delivered to every waiter);
//   - a distilled-content cache: completed keyed work is remembered under
//     its content key (object id + fidelity); a later submit for the same
//     key is served from cache instead of re-distilled, with deterministic
//     LRU eviction at capacity.
//
// A service with the default config (unbounded queue, batching off, cache
// off) behaves event-for-event like the historical per-warden RemoteServer:
// a fleet of one through the odyssey::RemoteServer facade reproduces the
// single-client goldens byte-identically.
//
// Determinism: requests are served strictly in arrival order (a global
// submission sequence), including across a stall clear that lands at the
// same timestamp as new submits — queued work drains ahead of anything
// submitted later, regardless of event-queue interleaving.

#ifndef SRC_SERVE_SHARED_SERVICE_H_
#define SRC_SERVE_SHARED_SERVICE_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/simulator.h"

namespace odserve {

// How a keyed submit was ultimately satisfied (or not).
enum class ServeOutcome {
  kServed,    // Dedicated or batched compute produced the content.
  kCacheHit,  // Served from the distilled-content cache; no compute.
  kRejected,  // Admission control refused the request (queue full).
};

const char* ServeOutcomeName(ServeOutcome outcome);

struct ServiceConfig {
  // Scales submitted work (a 2x-faster server halves it).
  double speed_factor = 1.0;
  // Admission bound on queue depth (waiting + in service).  A keyed submit
  // arriving when queue_depth() >= max_queue is rejected.  0 = unbounded
  // (no admission control; every request is accepted).
  int max_queue = 0;
  // Coalesce a keyed submit with already-queued or in-service work for the
  // same key: one unit of compute, every waiter completed.
  bool batch_same_key = false;
  // Distilled-content cache capacity in entries; 0 disables the cache.
  size_t cache_capacity = 0;
};

class SharedService {
 public:
  SharedService(odsim::Simulator* sim, std::string name,
                ServiceConfig config = {});

  SharedService(const SharedService&) = delete;
  SharedService& operator=(const SharedService&) = delete;

  // Registers a client session and returns its id.  Sessions only carry
  // attribution (per-session completion counts); they do not partition the
  // queue.
  int OpenSession(std::string client_name);
  int session_count() const { return static_cast<int>(sessions_.size()); }

  // -- Submission ------------------------------------------------------------

  // Unkeyed FIFO compute, the historical RemoteServer contract: never
  // rejected, never batched, never cached.  `on_done` fires when this
  // request's work completes.  Only valid on a service without admission
  // control (an unkeyed submit has no reject channel).
  void Submit(int session, odsim::SimDuration work, odsim::EventFn on_done);

  using ServeFn = std::function<void(ServeOutcome)>;

  // Keyed submit: eligible for the cache, for batching, and for admission
  // rejection.  The completion callback may fire synchronously (cache hit,
  // reject) or later (served).  `key` identifies the distilled content —
  // object id plus fidelity — so equal keys are equal bytes.
  void SubmitKeyed(int session, const std::string& key, odsim::SimDuration work,
                   ServeFn on_done);

  // -- Stall (fault injection) -----------------------------------------------

  // Compute stall: the service stops dequeuing.  The request already in
  // service finishes (its completion was scheduled), but queued and new
  // requests wait and drain in submission order when the stall clears.
  // Cache hits still serve while stalled: the content front-end is not the
  // wedged distiller pipeline.
  void SetStalled(bool stalled);
  bool stalled() const { return stalled_; }

  // -- Introspection ---------------------------------------------------------

  const std::string& name() const { return name_; }
  int queue_depth() const {
    return static_cast<int>(queue_.size()) + (busy_ ? 1 : 0);
  }
  double total_busy_seconds() const { return total_busy_seconds_; }
  int completed_requests() const { return completed_; }
  int rejected_requests() const { return rejected_; }
  int cache_hits() const { return cache_hits_; }
  int cache_evictions() const { return cache_evictions_; }
  int batch_joins() const { return batch_joins_; }
  size_t cache_size() const { return cache_index_.size(); }
  int SessionCompleted(int session) const;

  // Queue-wait statistics over served requests (time from submit to service
  // start; batched joiners measure from their own submit).  Cache hits and
  // rejects never queue and are excluded.
  int waits_recorded() const { return static_cast<int>(waits_.size()); }
  double MeanWaitSeconds() const;
  // Nearest-rank percentile, deterministic.  p in [0, 100].
  double WaitPercentileSeconds(double p) const;

 private:
  struct Waiter {
    int session = 0;
    odsim::SimTime submitted;
    ServeFn on_done;
  };
  struct Request {
    odsim::SimDuration work;          // Already scaled by speed_factor.
    odsim::SimTime submitted;
    int session = 0;
    bool keyed = false;
    std::string key;
    odsim::EventFn on_done;           // Unkeyed completion.
    ServeFn on_served;                // Keyed completion.
    std::vector<Waiter> joined;       // Batched same-key waiters.
  };

  void StartNext();
  void CacheInsert(const std::string& key);
  bool CacheLookup(const std::string& key);
  Request* FindBatchTarget(const std::string& key);
  void RecordWait(odsim::SimTime submitted, odsim::SimTime started);

  odsim::Simulator* sim_;
  std::string name_;
  ServiceConfig config_;
  std::vector<std::string> sessions_;
  std::vector<int> session_completed_;

  std::deque<Request> queue_;  // Arrival order; front is served next.
  bool busy_ = false;
  bool in_service_keyed_ = false;
  std::string in_service_key_;
  Request in_service_;  // Valid while busy_: joiners attach here.
  bool stalled_ = false;

  double total_busy_seconds_ = 0.0;
  int completed_ = 0;
  int rejected_ = 0;
  int cache_hits_ = 0;
  int cache_evictions_ = 0;
  int batch_joins_ = 0;
  std::vector<double> waits_;

  // LRU cache: list front = most recently used; map points into the list.
  std::list<std::string> cache_lru_;
  std::unordered_map<std::string, std::list<std::string>::iterator> cache_index_;
};

}  // namespace odserve

#endif  // SRC_SERVE_SHARED_SERVICE_H_
