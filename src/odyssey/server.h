// Remote servers: a thin session facade over the shared service layer.
//
// The paper's servers are 200 MHz Pentium Pro desktops "likely to be
// operating from a power outlet rather than a battery": their energy is
// free from the client's perspective, but their compute time is not —
// requests queue.  Historically each warden owned one dedicated server; at
// fleet scale many devices share a handful of distillation servers, so the
// queueing model now lives in odserve::SharedService and RemoteServer is
// one client *session* against such a service.  The single-owner
// constructor keeps the historical dedicated-server behavior (and its
// exact event sequence); the attaching constructor joins an existing
// shared service, which is how a fleet of viceroys contends for one
// distiller.

#ifndef SRC_ODYSSEY_SERVER_H_
#define SRC_ODYSSEY_SERVER_H_

#include <memory>
#include <string>

#include "src/serve/shared_service.h"
#include "src/sim/simulator.h"

namespace odyssey {

class RemoteServer {
 public:
  // Dedicated server: owns a private SharedService with a single session.
  // `speed_factor` scales submitted work (a 2x-faster server halves it).
  RemoteServer(odsim::Simulator* sim, std::string name, double speed_factor = 1.0);

  // Session facade: attaches to an existing shared service as one more
  // client session.  `client_name` labels the session for attribution.
  RemoteServer(odserve::SharedService* service, std::string client_name);

  RemoteServer(const RemoteServer&) = delete;
  RemoteServer& operator=(const RemoteServer&) = delete;

  // Queues `work` of server computation; FIFO service.  `on_done` fires
  // when this request's work completes.
  void Submit(odsim::SimDuration work, odsim::EventFn on_done);

  // Keyed submission: eligible for the shared service's distilled-content
  // cache, same-key batching, and admission control.  The completion
  // carries how the request was satisfied (served, cache hit, rejected).
  void SubmitKeyed(const std::string& key, odsim::SimDuration work,
                   odserve::SharedService::ServeFn on_done);

  // Compute stall: the server stops dequeuing.  The request already being
  // serviced finishes (its completion was scheduled), but queued and new
  // requests wait and drain in submission order when the stall clears.
  // Models a wedged or thrashing server, as distinct from a dead link.
  // On a shared service this wedges every session — one stalled distiller
  // degrades the whole fleet.
  void SetStalled(bool stalled);
  bool stalled() const { return service_->stalled(); }

  const std::string& name() const { return service_->name(); }
  // Service-level totals: on a dedicated server these are this client's
  // numbers; on a shared service they aggregate every session.
  int queue_depth() const { return service_->queue_depth(); }
  double total_busy_seconds() const { return service_->total_busy_seconds(); }
  int completed_requests() const { return service_->completed_requests(); }

  // This session's completed requests (equals completed_requests() on a
  // dedicated server).
  int session_completed() const { return service_->SessionCompleted(session_); }

  odserve::SharedService* service() { return service_; }
  int session() const { return session_; }

 private:
  std::unique_ptr<odserve::SharedService> owned_;  // Dedicated servers only.
  odserve::SharedService* service_;
  int session_;
};

}  // namespace odyssey

#endif  // SRC_ODYSSEY_SERVER_H_
