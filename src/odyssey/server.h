// Remote servers.
//
// The paper's servers are 200 MHz Pentium Pro desktops "likely to be
// operating from a power outlet rather than a battery": their energy is
// free from the client's perspective, but their compute time is not —
// requests queue.  Each warden owns one server; concurrent client requests
// to the same data type therefore serialize, which matters for concurrent
// workloads.

#ifndef SRC_ODYSSEY_SERVER_H_
#define SRC_ODYSSEY_SERVER_H_

#include <deque>
#include <string>

#include "src/sim/simulator.h"

namespace odyssey {

class RemoteServer {
 public:
  // `speed_factor` scales submitted work (a 2x-faster server halves it).
  RemoteServer(odsim::Simulator* sim, std::string name, double speed_factor = 1.0);

  RemoteServer(const RemoteServer&) = delete;
  RemoteServer& operator=(const RemoteServer&) = delete;

  // Queues `work` of server computation; FIFO service.  `on_done` fires
  // when this request's work completes.
  void Submit(odsim::SimDuration work, odsim::EventFn on_done);

  // Compute stall: the server stops dequeuing.  The request already being
  // serviced finishes (its completion was scheduled), but queued and new
  // requests wait and drain in order when the stall clears.  Models a
  // wedged or thrashing server, as distinct from a dead link.
  void SetStalled(bool stalled);
  bool stalled() const { return stalled_; }

  const std::string& name() const { return name_; }
  int queue_depth() const {
    return static_cast<int>(queue_.size()) + (busy_ ? 1 : 0);
  }
  double total_busy_seconds() const { return total_busy_seconds_; }
  int completed_requests() const { return completed_; }

 private:
  struct Request {
    odsim::SimDuration work;
    odsim::EventFn on_done;
  };

  void StartNext();

  odsim::Simulator* sim_;
  std::string name_;
  double speed_factor_;
  std::deque<Request> queue_;
  bool busy_ = false;
  bool stalled_ = false;
  double total_busy_seconds_ = 0.0;
  int completed_ = 0;
};

}  // namespace odyssey

#endif  // SRC_ODYSSEY_SERVER_H_
