#include "src/odyssey/fidelity_clamp.h"

#include <algorithm>

#include "src/odyssey/application.h"
#include "src/odyssey/viceroy.h"
#include "src/util/check.h"

namespace odyssey {

FidelityClamp::FidelityClamp(Viceroy* viceroy) : viceroy_(viceroy) {
  OD_CHECK(viceroy != nullptr);
}

void FidelityClamp::Engage(const ChangeFn& on_change) {
  if (engaged_) {
    return;
  }
  engaged_ = true;
  ++engagements_;
  saved_levels_.clear();
  for (AdaptiveApplication* app : viceroy_->applications()) {
    saved_levels_.emplace_back(app, app->current_fidelity());
    int lowest = app->fidelity_spec().lowest();
    bool changes = app->current_fidelity() != lowest;
    viceroy_->IssueUpcall(app, lowest);
    if (changes && on_change) {
      on_change(app, lowest);
    }
  }
}

void FidelityClamp::Release(const ChangeFn& on_change) {
  if (!engaged_) {
    return;
  }
  engaged_ = false;
  for (auto& [app, level] : saved_levels_) {
    bool changes = app->current_fidelity() != level;
    viceroy_->IssueUpcall(app, level);
    if (changes && on_change) {
      on_change(app, level);
    }
  }
  saved_levels_.clear();
}

void FidelityClamp::Forget(const AdaptiveApplication* app) {
  std::erase_if(saved_levels_,
                [app](const auto& saved) { return saved.first == app; });
}

}  // namespace odyssey
