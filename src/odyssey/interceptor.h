// The interceptor (Figure 3).
//
// Odyssey is integrated into Linux as a VFS file system: applications that
// are not modified to speak to Odyssey directly (the paper's Web browser
// and map viewer use a proxy for this reason) have their data accesses
// intercepted and routed to the warden for the accessed object's type.
// This class models that routing layer: callers open a typed path and read
// objects through it; the interceptor resolves the warden, annotates the
// request with the caller's current fidelity, and forwards.

#ifndef SRC_ODYSSEY_INTERCEPTOR_H_
#define SRC_ODYSSEY_INTERCEPTOR_H_

#include <cstddef>
#include <string>

#include "src/odyssey/viceroy.h"
#include "src/odyssey/warden.h"
#include "src/sim/simulator.h"

namespace odyssey {

class Interceptor {
 public:
  explicit Interceptor(Viceroy* viceroy);

  Interceptor(const Interceptor&) = delete;
  Interceptor& operator=(const Interceptor&) = delete;

  // True if `path` names an object inside the Odyssey mount
  // ("/odyssey/<type>/<object>") whose type has a registered warden.
  bool Resolves(const std::string& path) const;

  // Intercepted read: parses the data type from `path`, resolves its
  // warden, and forwards a fetch of `bytes` with `server_time` preparation.
  // Returns false (and does not call `on_done`) if the path does not
  // resolve.
  bool Read(const std::string& path, size_t request_bytes, size_t bytes,
            odsim::SimDuration server_time, odsim::EventFn on_done);

  // Number of intercepted requests routed so far.
  int intercepted_count() const { return intercepted_; }

  // Parses "/odyssey/<type>/..." into "<type>"; empty if not an Odyssey
  // path.  Exposed for testing.
  static std::string DataTypeOf(const std::string& path);

 private:
  Viceroy* viceroy_;
  int intercepted_ = 0;
};

}  // namespace odyssey

#endif  // SRC_ODYSSEY_INTERCEPTOR_H_
