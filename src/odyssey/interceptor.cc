#include "src/odyssey/interceptor.h"

#include <utility>

#include "src/util/check.h"

namespace odyssey {

namespace {
constexpr const char kMountPrefix[] = "/odyssey/";
constexpr size_t kMountPrefixLen = sizeof(kMountPrefix) - 1;
}  // namespace

Interceptor::Interceptor(Viceroy* viceroy) : viceroy_(viceroy) {
  OD_CHECK(viceroy != nullptr);
}

std::string Interceptor::DataTypeOf(const std::string& path) {
  if (path.rfind(kMountPrefix, 0) != 0) {
    return "";
  }
  size_t start = kMountPrefixLen;
  size_t end = path.find('/', start);
  if (end == std::string::npos) {
    end = path.size();
  }
  return path.substr(start, end - start);
}

bool Interceptor::Resolves(const std::string& path) const {
  std::string type = DataTypeOf(path);
  return !type.empty() && viceroy_->FindWarden(type) != nullptr;
}

bool Interceptor::Read(const std::string& path, size_t request_bytes, size_t bytes,
                       odsim::SimDuration server_time, odsim::EventFn on_done) {
  std::string type = DataTypeOf(path);
  if (type.empty()) {
    return false;
  }
  Warden* warden = viceroy_->FindWarden(type);
  if (warden == nullptr) {
    return false;
  }
  ++intercepted_;
  warden->Fetch(request_bytes, bytes, server_time, std::move(on_done));
  return true;
}

}  // namespace odyssey
