#include "src/odyssey/server.h"

#include <utility>

#include "src/util/check.h"

namespace odyssey {

RemoteServer::RemoteServer(odsim::Simulator* sim, std::string name,
                           double speed_factor) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(speed_factor > 0.0);
  odserve::ServiceConfig config;
  config.speed_factor = speed_factor;
  owned_ = std::make_unique<odserve::SharedService>(sim, std::move(name), config);
  service_ = owned_.get();
  session_ = service_->OpenSession("client");
}

RemoteServer::RemoteServer(odserve::SharedService* service,
                           std::string client_name)
    : service_(service) {
  OD_CHECK(service != nullptr);
  session_ = service_->OpenSession(std::move(client_name));
}

void RemoteServer::Submit(odsim::SimDuration work, odsim::EventFn on_done) {
  service_->Submit(session_, work, std::move(on_done));
}

void RemoteServer::SubmitKeyed(const std::string& key, odsim::SimDuration work,
                               odserve::SharedService::ServeFn on_done) {
  service_->SubmitKeyed(session_, key, work, std::move(on_done));
}

void RemoteServer::SetStalled(bool stalled) { service_->SetStalled(stalled); }

}  // namespace odyssey
