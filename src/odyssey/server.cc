#include "src/odyssey/server.h"

#include <utility>

#include "src/util/check.h"

namespace odyssey {

RemoteServer::RemoteServer(odsim::Simulator* sim, std::string name,
                           double speed_factor)
    : sim_(sim), name_(std::move(name)), speed_factor_(speed_factor) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(speed_factor > 0.0);
}

void RemoteServer::Submit(odsim::SimDuration work, odsim::EventFn on_done) {
  OD_CHECK(work >= odsim::SimDuration::Zero());
  queue_.push_back(Request{work * (1.0 / speed_factor_), std::move(on_done)});
  if (!busy_) {
    StartNext();
  }
}

void RemoteServer::SetStalled(bool stalled) {
  if (stalled_ == stalled) {
    return;
  }
  stalled_ = stalled;
  if (!stalled_ && !busy_) {
    StartNext();  // Drain whatever queued while the server was wedged.
  }
}

void RemoteServer::StartNext() {
  if (queue_.empty() || stalled_) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request request = std::move(queue_.front());
  queue_.pop_front();
  total_busy_seconds_ += request.work.seconds();
  sim_->Schedule(request.work,
                 [this, on_done = std::move(request.on_done)]() mutable {
                   ++completed_;
                   if (on_done) {
                     on_done();
                   }
                   StartNext();
                 });
}

}  // namespace odyssey
