// The viceroy: Odyssey's central resource monitor and upcall dispatcher
// (Figure 3).
//
// The viceroy tracks registered applications and wardens, carries the shared
// RPC transport used by all wardens, maintains per-resource expectation
// windows, and issues upcalls when resources stray outside an application's
// expectations or when the energy layer directs a fidelity change.

#ifndef SRC_ODYSSEY_VICEROY_H_
#define SRC_ODYSSEY_VICEROY_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/bandwidth_monitor.h"
#include "src/net/link.h"
#include "src/net/rpc.h"
#include "src/odyssey/application.h"
#include "src/odyssey/fidelity_clamp.h"
#include "src/power/power_manager.h"
#include "src/sim/simulator.h"

namespace odserve {
class SharedService;
}  // namespace odserve

namespace odyssey {

class Warden;

// Identifies a monitored resource (network bandwidth, energy, ...).
enum class ResourceId {
  kNetworkBandwidth,
  kEnergy,
};

class Viceroy {
 public:
  Viceroy(odsim::Simulator* sim, odnet::Link* link, odpower::PowerManager* pm);
  ~Viceroy();

  Viceroy(const Viceroy&) = delete;
  Viceroy& operator=(const Viceroy&) = delete;

  // -- Application registry --------------------------------------------------

  void RegisterApplication(AdaptiveApplication* app);
  void UnregisterApplication(AdaptiveApplication* app);
  const std::vector<AdaptiveApplication*>& applications() const { return apps_; }

  // -- Wardens ---------------------------------------------------------------

  // The viceroy owns wardens; one per data type in the system.  The
  // one-argument form gives the warden a private server (the classic
  // single-client testbed); the two-argument form attaches the warden as a
  // session on a shared service so many devices multiplex one server.
  Warden* RegisterWarden(std::unique_ptr<Warden> warden);
  Warden* RegisterWarden(std::unique_ptr<Warden> warden,
                         odserve::SharedService* service);
  Warden* FindWarden(const std::string& data_type);
  const std::vector<std::unique_ptr<Warden>>& wardens() const { return wardens_; }

  // Service provider: when set, wardens registered through the one-argument
  // RegisterWarden attach to the service this returns for their data type
  // (nullptr falls back to a private server).  This is the seam that lets a
  // full testbed join a fleet's shared services without threading service
  // pointers through every application constructor.
  using ServiceProviderFn =
      std::function<odserve::SharedService*(const std::string& data_type)>;
  void set_service_provider(ServiceProviderFn provider) {
    service_provider_ = std::move(provider);
  }

  // -- Upcalls ---------------------------------------------------------------

  // Directs `app` to the given fidelity level and records the adaptation.
  // No-op (and not recorded) if the app is already there.
  void IssueUpcall(AdaptiveApplication* app, int level);

  int AdaptationCount(const AdaptiveApplication* app) const;
  int TotalAdaptations() const;
  void ResetAdaptationCounts();

  // -- Resource expectations (the original Odyssey API) ----------------------

  // Registers a tolerance window; when NotifyResourceLevel() reports a value
  // outside [low, high], the app receives a fidelity upcall chosen by the
  // caller-provided policy (here: one step down when below `low`, one step
  // up when above `high`).
  void RegisterExpectation(AdaptiveApplication* app, ResourceId resource, double low,
                           double high);
  void ClearExpectation(AdaptiveApplication* app, ResourceId resource);
  void NotifyResourceLevel(ResourceId resource, double value);

  // -- Link health and the outage clamp --------------------------------------

  // Periodic link health report; wire a BandwidthMonitor's health callback
  // here.  On an unhealthy estimate (outage or stale) every registered
  // application is clamped to its lowest fidelity and expectation-driven
  // upcalls are suppressed — during an outage there is no bandwidth signal
  // worth reacting to, and the cheapest fidelity minimizes the work wasted
  // on a dead channel.  Pre-clamp levels are restored only after
  // `recovery_hysteresis` consecutive healthy reports, so a flapping link
  // does not whipsaw fidelity.
  void NotifyLinkHealth(const odnet::BandwidthEstimate& estimate);

  bool link_clamped() const { return clamp_.engaged(); }
  // Times the clamp engaged (distinct unhealthy episodes).
  int outage_clamps() const { return clamp_.engagements(); }
  void set_recovery_hysteresis(int ticks);

  // -- Server overload and the overload clamp --------------------------------

  // Wardens report keyed-fetch outcomes here.  A run of consecutive
  // admission rejects (>= overload_threshold) means the shared service is
  // saturated: every app is clamped to its cheapest fidelity, which both
  // shrinks this device's demand and — because low fidelity keys repeat —
  // raises the chance later fetches hit the service cache.  The clamp
  // releases after `recovery_hysteresis` consecutive successful fetches,
  // the same hysteresis discipline as the link clamp, so a service
  // hovering at capacity does not whipsaw fidelity.
  void NotifyAdmissionReject();
  void NotifyFetchOk();

  bool overload_clamped() const { return overload_clamp_.engaged(); }
  // Times the overload clamp engaged (distinct saturation episodes).
  int overload_clamps() const { return overload_clamp_.engagements(); }
  void set_overload_threshold(int rejects);

  // -- Shared plumbing -------------------------------------------------------

  odsim::Simulator* sim() { return sim_; }
  odnet::Link* link() { return link_; }
  odnet::RpcClient& rpc() { return rpc_; }
  odpower::PowerManager* power_manager() { return pm_; }

 private:
  struct Expectation {
    AdaptiveApplication* app;
    ResourceId resource;
    double low;
    double high;
  };

  odsim::Simulator* sim_;
  odnet::Link* link_;
  odpower::PowerManager* pm_;
  odnet::RpcClient rpc_;

  std::vector<AdaptiveApplication*> apps_;
  std::vector<std::unique_ptr<Warden>> wardens_;
  ServiceProviderFn service_provider_;
  std::unordered_map<const AdaptiveApplication*, int> adaptation_counts_;
  std::vector<Expectation> expectations_;

  // Outage clamp state (save/clamp/restore itself lives in FidelityClamp,
  // shared with the energy layer's controller safe mode).
  FidelityClamp clamp_{this};
  int healthy_streak_ = 0;
  int recovery_hysteresis_ = 3;

  // Overload clamp state; independent of the outage clamp (both may be
  // engaged at once, each restores the levels it saved).
  FidelityClamp overload_clamp_{this};
  int consecutive_rejects_ = 0;
  int overload_ok_streak_ = 0;
  int overload_threshold_ = 3;
};

}  // namespace odyssey

#endif  // SRC_ODYSSEY_VICEROY_H_
