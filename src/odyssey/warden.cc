#include "src/odyssey/warden.h"

#include <utility>

#include "src/odyssey/viceroy.h"
#include "src/util/check.h"

namespace odyssey {

Warden::Warden(std::string data_type) : data_type_(std::move(data_type)) {}

Warden::~Warden() = default;

void Warden::Fetch(size_t request_bytes, size_t reply_bytes,
                   odsim::SimDuration server_time, odsim::EventFn on_done) {
  FetchWithStatus(request_bytes, reply_bytes, server_time,
                  [on_done = std::move(on_done)](odnet::RpcStatus) {
                    if (on_done) {
                      on_done();
                    }
                  });
}

void Warden::FetchKeyed(const std::string& key, size_t request_bytes,
                        size_t reply_bytes, odsim::SimDuration server_time,
                        OutcomeFn on_done) {
  OD_CHECK_MSG(viceroy_ != nullptr, "warden used before registration");
  RemoteServer* server = server_.get();
  // The serve outcome is produced inside the compute step and consumed by
  // the status completion; the shared slot carries it across.
  auto serve = std::make_shared<odserve::ServeOutcome>(odserve::ServeOutcome::kServed);
  viceroy_->rpc().CallWithOutcome(
      request_bytes, reply_bytes,
      [server, key, server_time, serve](std::function<void(bool)> done) {
        server->SubmitKeyed(key, server_time,
                            [serve, done = std::move(done)](odserve::ServeOutcome o) {
                              *serve = o;
                              done(o != odserve::ServeOutcome::kRejected);
                            });
      },
      [this, serve, on_done = std::move(on_done)](odnet::RpcStatus status) {
        if (status == odnet::RpcStatus::kRejected) {
          ++rejected_fetches_;
          viceroy_->NotifyAdmissionReject();
        } else if (status != odnet::RpcStatus::kOk) {
          ++failed_fetches_;
        } else {
          if (*serve == odserve::ServeOutcome::kCacheHit) {
            ++cache_hits_;
          }
          viceroy_->NotifyFetchOk();
        }
        if (on_done) {
          on_done(FetchOutcome{status, *serve});
        }
      });
}

void Warden::FetchWithStatus(size_t request_bytes, size_t reply_bytes,
                             odsim::SimDuration server_time,
                             odnet::RpcClient::StatusFn on_done) {
  OD_CHECK_MSG(viceroy_ != nullptr, "warden used before registration");
  RemoteServer* server = server_.get();
  viceroy_->rpc().CallWithStatus(
      request_bytes, reply_bytes,
      [server, server_time](odsim::EventFn done) {
        server->Submit(server_time, std::move(done));
      },
      [this, on_done = std::move(on_done)](odnet::RpcStatus status) {
        if (status != odnet::RpcStatus::kOk) {
          ++failed_fetches_;
        }
        if (on_done) {
          on_done(status);
        }
      });
}

}  // namespace odyssey
