#include "src/odyssey/warden.h"

#include <utility>

#include "src/odyssey/viceroy.h"
#include "src/util/check.h"

namespace odyssey {

Warden::Warden(std::string data_type) : data_type_(std::move(data_type)) {}

Warden::~Warden() = default;

void Warden::Fetch(size_t request_bytes, size_t reply_bytes,
                   odsim::SimDuration server_time, odsim::EventFn on_done) {
  FetchWithStatus(request_bytes, reply_bytes, server_time,
                  [on_done = std::move(on_done)](odnet::RpcStatus) {
                    if (on_done) {
                      on_done();
                    }
                  });
}

void Warden::FetchWithStatus(size_t request_bytes, size_t reply_bytes,
                             odsim::SimDuration server_time,
                             odnet::RpcClient::StatusFn on_done) {
  OD_CHECK_MSG(viceroy_ != nullptr, "warden used before registration");
  RemoteServer* server = server_.get();
  viceroy_->rpc().CallWithStatus(
      request_bytes, reply_bytes,
      [server, server_time](odsim::EventFn done) {
        server->Submit(server_time, std::move(done));
      },
      [this, on_done = std::move(on_done)](odnet::RpcStatus status) {
        if (status != odnet::RpcStatus::kOk) {
          ++failed_fetches_;
        }
        if (on_done) {
          on_done(status);
        }
      });
}

}  // namespace odyssey
