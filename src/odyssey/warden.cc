#include "src/odyssey/warden.h"

#include <utility>

#include "src/odyssey/viceroy.h"
#include "src/util/check.h"

namespace odyssey {

Warden::Warden(std::string data_type) : data_type_(std::move(data_type)) {}

Warden::~Warden() = default;

void Warden::Fetch(size_t request_bytes, size_t reply_bytes,
                   odsim::SimDuration server_time, odsim::EventFn on_done) {
  OD_CHECK_MSG(viceroy_ != nullptr, "warden used before registration");
  RemoteServer* server = server_.get();
  viceroy_->rpc().CallWithCompute(
      request_bytes, reply_bytes,
      [server, server_time](odsim::EventFn done) {
        server->Submit(server_time, std::move(done));
      },
      std::move(on_done));
}

}  // namespace odyssey
