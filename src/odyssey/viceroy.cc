#include "src/odyssey/viceroy.h"

#include <algorithm>
#include <utility>

#include "src/odyssey/warden.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace odyssey {

Viceroy::Viceroy(odsim::Simulator* sim, odnet::Link* link, odpower::PowerManager* pm)
    : sim_(sim), link_(link), pm_(pm), rpc_(sim, link, pm) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(link != nullptr);
  OD_CHECK(pm != nullptr);
}

Viceroy::~Viceroy() = default;

void Viceroy::RegisterApplication(AdaptiveApplication* app) {
  OD_CHECK(app != nullptr);
  OD_CHECK(std::find(apps_.begin(), apps_.end(), app) == apps_.end());
  apps_.push_back(app);
}

void Viceroy::UnregisterApplication(AdaptiveApplication* app) {
  apps_.erase(std::remove(apps_.begin(), apps_.end(), app), apps_.end());
  std::erase_if(expectations_,
                [app](const Expectation& e) { return e.app == app; });
  clamp_.Forget(app);
  overload_clamp_.Forget(app);
}

Warden* Viceroy::RegisterWarden(std::unique_ptr<Warden> warden) {
  OD_CHECK(warden != nullptr);
  if (service_provider_ != nullptr) {
    if (odserve::SharedService* service =
            service_provider_(warden->data_type())) {
      return RegisterWarden(std::move(warden), service);
    }
  }
  OD_CHECK(FindWarden(warden->data_type()) == nullptr);
  warden->viceroy_ = this;
  warden->server_ =
      std::make_unique<RemoteServer>(sim_, warden->data_type() + "-server");
  wardens_.push_back(std::move(warden));
  return wardens_.back().get();
}

Warden* Viceroy::RegisterWarden(std::unique_ptr<Warden> warden,
                                odserve::SharedService* service) {
  OD_CHECK(warden != nullptr);
  OD_CHECK(service != nullptr);
  OD_CHECK(FindWarden(warden->data_type()) == nullptr);
  warden->viceroy_ = this;
  warden->server_ =
      std::make_unique<RemoteServer>(service, warden->data_type() + "-client");
  wardens_.push_back(std::move(warden));
  return wardens_.back().get();
}

Warden* Viceroy::FindWarden(const std::string& data_type) {
  for (const auto& w : wardens_) {
    if (w->data_type() == data_type) {
      return w.get();
    }
  }
  return nullptr;
}

void Viceroy::IssueUpcall(AdaptiveApplication* app, int level) {
  OD_CHECK(app != nullptr);
  OD_CHECK(app->fidelity_spec().valid(level));
  if (app->current_fidelity() == level) {
    return;
  }
  OD_LOG_DEBUG("upcall t=%.1fs %s -> %s", sim_->Now().seconds(),
               app->name().c_str(), app->fidelity_spec().name(level).c_str());
  app->SetFidelity(level);
  ++adaptation_counts_[app];
}

int Viceroy::AdaptationCount(const AdaptiveApplication* app) const {
  auto it = adaptation_counts_.find(app);
  return it == adaptation_counts_.end() ? 0 : it->second;
}

int Viceroy::TotalAdaptations() const {
  int total = 0;
  for (const auto& [app, count] : adaptation_counts_) {
    total += count;
  }
  return total;
}

void Viceroy::ResetAdaptationCounts() { adaptation_counts_.clear(); }

void Viceroy::RegisterExpectation(AdaptiveApplication* app, ResourceId resource,
                                  double low, double high) {
  OD_CHECK(app != nullptr);
  OD_CHECK(low <= high);
  ClearExpectation(app, resource);
  expectations_.push_back(Expectation{app, resource, low, high});
}

void Viceroy::ClearExpectation(AdaptiveApplication* app, ResourceId resource) {
  std::erase_if(expectations_, [app, resource](const Expectation& e) {
    return e.app == app && e.resource == resource;
  });
}

void Viceroy::NotifyResourceLevel(ResourceId resource, double value) {
  if (clamp_.engaged() || overload_clamp_.engaged()) {
    // A clamp owns fidelity until its authority releases it; a stream of
    // zero-bandwidth estimates must not pile extra downgrade upcalls on top
    // (or let an energy expectation raise fidelity into a dead channel or
    // a saturated server).
    return;
  }
  // Collect the violated expectations first: upcalls may re-register.
  std::vector<std::pair<AdaptiveApplication*, int>> upcalls;
  for (const Expectation& e : expectations_) {
    if (e.resource != resource) {
      continue;
    }
    if (value < e.low && !e.app->AtLowestFidelity()) {
      upcalls.emplace_back(e.app, e.app->current_fidelity() - 1);
    } else if (value > e.high && !e.app->AtHighestFidelity()) {
      upcalls.emplace_back(e.app, e.app->current_fidelity() + 1);
    }
  }
  for (auto& [app, level] : upcalls) {
    IssueUpcall(app, level);
  }
}

void Viceroy::set_recovery_hysteresis(int ticks) {
  OD_CHECK(ticks >= 1);
  recovery_hysteresis_ = ticks;
}

void Viceroy::set_overload_threshold(int rejects) {
  OD_CHECK(rejects >= 1);
  overload_threshold_ = rejects;
}

void Viceroy::NotifyAdmissionReject() {
  overload_ok_streak_ = 0;
  if (overload_clamp_.engaged()) {
    return;
  }
  if (++consecutive_rejects_ < overload_threshold_) {
    return;
  }
  consecutive_rejects_ = 0;
  OD_LOG_DEBUG("server overloaded t=%.1fs: clamping %zu apps to lowest",
               sim_->Now().seconds(), apps_.size());
  overload_clamp_.Engage();
}

void Viceroy::NotifyFetchOk() {
  consecutive_rejects_ = 0;
  if (!overload_clamp_.engaged()) {
    return;
  }
  if (++overload_ok_streak_ < recovery_hysteresis_) {
    return;
  }
  overload_ok_streak_ = 0;
  OD_LOG_DEBUG("server recovered t=%.1fs: restoring apps", sim_->Now().seconds());
  overload_clamp_.Release();
}

void Viceroy::NotifyLinkHealth(const odnet::BandwidthEstimate& estimate) {
  if (!estimate.healthy()) {
    healthy_streak_ = 0;
    if (!clamp_.engaged()) {
      OD_LOG_DEBUG("link unhealthy t=%.1fs: clamping %zu apps to lowest",
                   sim_->Now().seconds(), apps_.size());
      clamp_.Engage();
    }
    return;
  }
  if (!clamp_.engaged()) {
    return;
  }
  if (++healthy_streak_ < recovery_hysteresis_) {
    return;
  }
  healthy_streak_ = 0;
  OD_LOG_DEBUG("link recovered t=%.1fs: restoring apps", sim_->Now().seconds());
  clamp_.Release();
}

}  // namespace odyssey
