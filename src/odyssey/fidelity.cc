#include "src/odyssey/fidelity.h"

#include <utility>

#include "src/util/check.h"

namespace odyssey {

FidelitySpec::FidelitySpec(std::vector<std::string> level_names)
    : names_(std::move(level_names)) {
  OD_CHECK(!names_.empty());
}

const std::string& FidelitySpec::name(int level) const {
  OD_CHECK(valid(level));
  return names_[static_cast<size_t>(level)];
}

}  // namespace odyssey
