// Save-clamp-restore of application fidelity.
//
// Two emergency paths pin every application to its cheapest fidelity and
// later restore what the user had: the viceroy's link-outage clamp and the
// energy layer's controller safe mode (GoalDirector).  Both need the same
// careful bookkeeping — save pre-clamp levels in registration order so
// restoration is deterministic, survive apps unregistering mid-clamp, count
// distinct engagements — so it lives here once.  Each clamping authority
// owns its own FidelityClamp instance; the instances are independent (a
// link clamp and a safe-mode clamp may overlap, and each restores the
// levels *it* saved).

#ifndef SRC_ODYSSEY_FIDELITY_CLAMP_H_
#define SRC_ODYSSEY_FIDELITY_CLAMP_H_

#include <functional>
#include <utility>
#include <vector>

namespace odyssey {

class AdaptiveApplication;
class Viceroy;

class FidelityClamp {
 public:
  explicit FidelityClamp(Viceroy* viceroy);

  FidelityClamp(const FidelityClamp&) = delete;
  FidelityClamp& operator=(const FidelityClamp&) = delete;

  // Observes every fidelity level actually issued by Engage/Release (apps
  // already at the target level produce no call).
  using ChangeFn = std::function<void(AdaptiveApplication*, int level)>;

  // Saves every registered application's fidelity and clamps it to its
  // lowest.  No-op when already engaged.
  void Engage(const ChangeFn& on_change = nullptr);

  // Restores the saved levels.  No-op when not engaged.
  void Release(const ChangeFn& on_change = nullptr);

  // Drops any saved level for `app` (call when an app unregisters while
  // the clamp is engaged; restoring into a dead app would be an error).
  void Forget(const AdaptiveApplication* app);

  bool engaged() const { return engaged_; }
  // Distinct engagements so far.
  int engagements() const { return engagements_; }

 private:
  Viceroy* viceroy_;
  bool engaged_ = false;
  int engagements_ = 0;
  // Registration order, so restoration issues upcalls deterministically.
  std::vector<std::pair<AdaptiveApplication*, int>> saved_levels_;
};

}  // namespace odyssey

#endif  // SRC_ODYSSEY_FIDELITY_CLAMP_H_
