// Fidelity: the degree to which data presented at the client matches the
// reference copy at the server (Section 2.2).
//
// Fidelity is type-specific (video trades compression and window size,
// speech trades vocabulary and execution site, ...), but the adaptation
// machinery only needs a totally ordered ladder of levels per application.
// FidelitySpec is that ladder: level 0 is the lowest acceptable fidelity and
// level count()-1 the highest.  The type-specific meaning of each level
// lives in the application and its warden.

#ifndef SRC_ODYSSEY_FIDELITY_H_
#define SRC_ODYSSEY_FIDELITY_H_

#include <string>
#include <vector>

namespace odyssey {

class FidelitySpec {
 public:
  // `level_names` is ordered lowest fidelity first.
  explicit FidelitySpec(std::vector<std::string> level_names);

  int count() const { return static_cast<int>(names_.size()); }
  const std::string& name(int level) const;

  int lowest() const { return 0; }
  int highest() const { return count() - 1; }

  bool valid(int level) const { return level >= 0 && level < count(); }

 private:
  std::vector<std::string> names_;
};

}  // namespace odyssey

#endif  // SRC_ODYSSEY_FIDELITY_H_
