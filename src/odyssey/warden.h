// Wardens: type-specific code components (Figure 3).
//
// A warden encapsulates everything Odyssey needs to know about one data
// type: how to fetch objects from servers at a requested fidelity, and how
// much data a given fidelity implies.  Type-specific wardens (video, speech,
// map, web) subclass this and live next to their applications; the base
// class provides the shared fetch-over-RPC path.

#ifndef SRC_ODYSSEY_WARDEN_H_
#define SRC_ODYSSEY_WARDEN_H_

#include <cstddef>
#include <memory>
#include <string>

#include "src/odyssey/server.h"
#include "src/sim/simulator.h"

namespace odyssey {

class Viceroy;

class Warden {
 public:
  explicit Warden(std::string data_type);
  virtual ~Warden();

  Warden(const Warden&) = delete;
  Warden& operator=(const Warden&) = delete;

  const std::string& data_type() const { return data_type_; }

  // Fetches an object: sends a `request_bytes` annotated request, lets this
  // type's server spend `server_time` producing the representation
  // (filtering, transcoding, distillation), then receives `reply_bytes`.
  // Concurrent fetches queue at the server.
  void Fetch(size_t request_bytes, size_t reply_bytes, odsim::SimDuration server_time,
             odsim::EventFn on_done);

  Viceroy* viceroy() { return viceroy_; }

  // This data type's server; created at registration.
  RemoteServer* server() { return server_.get(); }

 private:
  friend class Viceroy;

  std::string data_type_;
  Viceroy* viceroy_ = nullptr;  // Set at registration.
  std::unique_ptr<RemoteServer> server_;
};

}  // namespace odyssey

#endif  // SRC_ODYSSEY_WARDEN_H_
