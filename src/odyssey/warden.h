// Wardens: type-specific code components (Figure 3).
//
// A warden encapsulates everything Odyssey needs to know about one data
// type: how to fetch objects from servers at a requested fidelity, and how
// much data a given fidelity implies.  Type-specific wardens (video, speech,
// map, web) subclass this and live next to their applications; the base
// class provides the shared fetch-over-RPC path.

#ifndef SRC_ODYSSEY_WARDEN_H_
#define SRC_ODYSSEY_WARDEN_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "src/net/rpc.h"
#include "src/odyssey/server.h"
#include "src/sim/simulator.h"

namespace odyssey {

class Viceroy;

class Warden {
 public:
  explicit Warden(std::string data_type);
  virtual ~Warden();

  Warden(const Warden&) = delete;
  Warden& operator=(const Warden&) = delete;

  const std::string& data_type() const { return data_type_; }

  // Fetches an object: sends a `request_bytes` annotated request, lets this
  // type's server spend `server_time` producing the representation
  // (filtering, transcoding, distillation), then receives `reply_bytes`.
  // Concurrent fetches queue at the server.
  void Fetch(size_t request_bytes, size_t reply_bytes, odsim::SimDuration server_time,
             odsim::EventFn on_done);

  // As Fetch, but the completion carries the RPC's typed outcome so the
  // caller can degrade deliberately — reuse a cached object, render a
  // placeholder — instead of pretending the fetch succeeded.  Failed
  // fetches are counted per warden.
  void FetchWithStatus(size_t request_bytes, size_t reply_bytes,
                       odsim::SimDuration server_time,
                       odnet::RpcClient::StatusFn on_done);

  // How a keyed fetch ended: the RPC outcome plus, for completed calls,
  // how the service satisfied it (dedicated/batched compute vs the
  // distilled-content cache).
  struct FetchOutcome {
    odnet::RpcStatus status = odnet::RpcStatus::kOk;
    odserve::ServeOutcome serve = odserve::ServeOutcome::kServed;
  };
  using OutcomeFn = std::function<void(const FetchOutcome&)>;

  // Keyed fetch against this type's (possibly shared) service.  `key`
  // names the distilled content — object id plus fidelity level — so the
  // service can batch identical in-flight work and serve repeats from its
  // cache.  Admission rejects come back typed (RpcStatus::kRejected); the
  // warden counts them and reports server overload to the viceroy, whose
  // clamp degrades the client rather than letting it hammer a full queue.
  void FetchKeyed(const std::string& key, size_t request_bytes,
                  size_t reply_bytes, odsim::SimDuration server_time,
                  OutcomeFn on_done);

  // Fetches that ended without a reply (retries exhausted or deadline).
  int failed_fetches() const { return failed_fetches_; }
  // Keyed fetches refused by admission control.
  int rejected_fetches() const { return rejected_fetches_; }
  // Keyed fetches served from the distilled-content cache.
  int cache_hits() const { return cache_hits_; }

  Viceroy* viceroy() { return viceroy_; }

  // This data type's server; created at registration.
  RemoteServer* server() { return server_.get(); }

 private:
  friend class Viceroy;

  std::string data_type_;
  Viceroy* viceroy_ = nullptr;  // Set at registration.
  std::unique_ptr<RemoteServer> server_;
  int failed_fetches_ = 0;
  int rejected_fetches_ = 0;
  int cache_hits_ = 0;
};

}  // namespace odyssey

#endif  // SRC_ODYSSEY_WARDEN_H_
