// Wardens: type-specific code components (Figure 3).
//
// A warden encapsulates everything Odyssey needs to know about one data
// type: how to fetch objects from servers at a requested fidelity, and how
// much data a given fidelity implies.  Type-specific wardens (video, speech,
// map, web) subclass this and live next to their applications; the base
// class provides the shared fetch-over-RPC path.

#ifndef SRC_ODYSSEY_WARDEN_H_
#define SRC_ODYSSEY_WARDEN_H_

#include <cstddef>
#include <memory>
#include <string>

#include "src/net/rpc.h"
#include "src/odyssey/server.h"
#include "src/sim/simulator.h"

namespace odyssey {

class Viceroy;

class Warden {
 public:
  explicit Warden(std::string data_type);
  virtual ~Warden();

  Warden(const Warden&) = delete;
  Warden& operator=(const Warden&) = delete;

  const std::string& data_type() const { return data_type_; }

  // Fetches an object: sends a `request_bytes` annotated request, lets this
  // type's server spend `server_time` producing the representation
  // (filtering, transcoding, distillation), then receives `reply_bytes`.
  // Concurrent fetches queue at the server.
  void Fetch(size_t request_bytes, size_t reply_bytes, odsim::SimDuration server_time,
             odsim::EventFn on_done);

  // As Fetch, but the completion carries the RPC's typed outcome so the
  // caller can degrade deliberately — reuse a cached object, render a
  // placeholder — instead of pretending the fetch succeeded.  Failed
  // fetches are counted per warden.
  void FetchWithStatus(size_t request_bytes, size_t reply_bytes,
                       odsim::SimDuration server_time,
                       odnet::RpcClient::StatusFn on_done);

  // Fetches that ended without a reply (retries exhausted or deadline).
  int failed_fetches() const { return failed_fetches_; }

  Viceroy* viceroy() { return viceroy_; }

  // This data type's server; created at registration.
  RemoteServer* server() { return server_.get(); }

 private:
  friend class Viceroy;

  std::string data_type_;
  Viceroy* viceroy_ = nullptr;  // Set at registration.
  std::unique_ptr<RemoteServer> server_;
  int failed_fetches_ = 0;
};

}  // namespace odyssey

#endif  // SRC_ODYSSEY_WARDEN_H_
