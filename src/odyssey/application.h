// Interface adaptive applications present to Odyssey.
//
// Applications register with the viceroy, expose their fidelity ladder, and
// receive upcalls directing them to a new level.  Priorities order
// adaptation: Odyssey degrades the lowest-priority application first and
// upgrades the highest-priority first (Section 5.3).

#ifndef SRC_ODYSSEY_APPLICATION_H_
#define SRC_ODYSSEY_APPLICATION_H_

#include <string>

#include "src/odyssey/fidelity.h"

namespace odyssey {

class AdaptiveApplication {
 public:
  virtual ~AdaptiveApplication() = default;

  virtual const std::string& name() const = 0;

  // Larger values are more important to the user.
  virtual int priority() const = 0;

  virtual const FidelitySpec& fidelity_spec() const = 0;
  virtual int current_fidelity() const = 0;

  // Upcall target: move to `level`.  Takes effect on the application's next
  // unit of work (frame, utterance, fetch).
  virtual void SetFidelity(int level) = 0;

  bool AtLowestFidelity() const {
    return current_fidelity() == fidelity_spec().lowest();
  }
  bool AtHighestFidelity() const {
    return current_fidelity() == fidelity_spec().highest();
  }
};

}  // namespace odyssey

#endif  // SRC_ODYSSEY_APPLICATION_H_
