// Discrete-event simulator.
//
// Owns the virtual clock, the pending-event set, the process table, and the
// single simulated CPU.  The CPU runs work items round-robin with a fixed
// quantum, so at every instant exactly one (pid, procedure) context is
// executing — which is what PowerScope samples and what the energy
// accountant attributes against.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <deque>
#include <functional>
#include <type_traits>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/process.h"
#include "src/sim/time.h"
#include "src/util/check.h"

namespace odsim {

// Observes CPU context switches (including switches to/from idle).
class CpuObserver {
 public:
  virtual ~CpuObserver() = default;

  // Called whenever the executing (pid, procedure) changes, at time `now`.
  // `busy` is false exactly when pid == kIdlePid.
  virtual void OnCpuContextSwitch(SimTime now, ProcessId pid, ProcedureId proc,
                                  bool busy) = 0;
};

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }
  ProcessTable& processes() { return processes_; }
  const ProcessTable& processes() const { return processes_; }

  // -- Event scheduling ------------------------------------------------------

  EventHandle Schedule(SimDuration delay, EventFn fn);
  EventHandle ScheduleAt(SimTime at, EventFn fn);

  // Runs until the event queue is exhausted or Stop() is called.
  void Run();

  // Runs all events with time <= deadline, then advances the clock to it.
  void RunUntil(SimTime deadline);

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  // Events dispatched by Run()/RunUntil() since construction.  The simspeed
  // benchmark divides this by wall time to track simulator throughput.
  uint64_t events_processed() const { return events_processed_; }

  // -- CPU -------------------------------------------------------------------

  // Submits `work` of CPU time for the given context; `on_complete` (may be
  // null) fires when the work has fully executed.  Work from concurrent
  // submissions is interleaved round-robin.
  void SubmitWork(ProcessId pid, ProcedureId proc, SimDuration work,
                  EventFn on_complete);

  // Currently executing context.
  ProcessId current_pid() const { return current_pid_; }
  ProcedureId current_proc() const { return current_proc_; }
  bool cpu_busy() const { return current_pid_ != kIdlePid; }

  // Number of work items queued or executing.
  int runnable_count() const { return static_cast<int>(run_queue_.size()); }

  // Process ids with queued or executing work, in queue order (duplicates
  // possible).  Lets cooperative applications shed load when competing work
  // from other processes is runnable.
  std::vector<ProcessId> RunnablePids() const;

  // Observers are not owned; they must outlive the simulator's run.
  // Registration captures the observer's concrete type, so context-switch
  // dispatch goes through a flat (object, function-pointer) table with the
  // virtual hop resolved at compile time; registering through an abstract
  // pointer keeps the virtual call.  Context switches are the hottest
  // notification in the simulator, hence the registered-callback shape.
  template <typename T>
  void AddCpuObserver(T* observer) {
    static_assert(std::is_base_of_v<CpuObserver, T>,
                  "observer must implement CpuObserver");
    OD_CHECK(observer != nullptr);
    cpu_observers_.push_back(CpuSwitchHook{
        observer,
        [](void* o, SimTime now, ProcessId pid, ProcedureId proc, bool busy) {
          T* t = static_cast<T*>(o);
          if constexpr (std::is_abstract_v<T>) {
            t->OnCpuContextSwitch(now, pid, proc, busy);
          } else {
            // Qualified call: bypasses the vtable.  Sound because the
            // registered pointer's static type is the dynamic type (no
            // class in the tree derives from a concrete observer).
            t->T::OnCpuContextSwitch(now, pid, proc, busy);
          }
        }});
  }

  // Scheduling quantum (default 10 ms).  Must be set before any work is
  // submitted.
  void set_cpu_quantum(SimDuration quantum);

  // CPU speed as a fraction of nominal (clock scaling).  Work submitted in
  // nominal CPU-seconds executes at this rate: at 0.5, one second of work
  // takes two wall seconds.  Takes effect at the next scheduling boundary.
  void set_cpu_speed(double speed);
  double cpu_speed() const { return cpu_speed_; }

 private:
  struct WorkItem {
    ProcessId pid;
    ProcedureId proc;
    SimDuration remaining;
    EventFn on_complete;
  };

  void Dispatch(SimTime now);
  void SetContext(SimTime now, ProcessId pid, ProcedureId proc);

  SimTime now_;
  EventQueue queue_;
  ProcessTable processes_;
  bool stopped_ = false;
  uint64_t events_processed_ = 0;

  std::deque<WorkItem> run_queue_;
  bool cpu_dispatching_ = false;
  EventHandle slice_end_;
  SimDuration quantum_ = SimDuration::Millis(10);
  double cpu_speed_ = 1.0;

  ProcessId current_pid_ = kIdlePid;
  ProcedureId current_proc_ = kIdleProc;
  struct CpuSwitchHook {
    void* object;
    void (*fn)(void* object, SimTime now, ProcessId pid, ProcedureId proc,
               bool busy);
  };
  std::vector<CpuSwitchHook> cpu_observers_;
};

}  // namespace odsim

#endif  // SRC_SIM_SIMULATOR_H_
