// Pending-event set for the discrete-event simulator.
//
// Events at equal timestamps fire in scheduling order (FIFO), which the
// sequence number guarantees.  Storage is a slot arena plus a binary heap
// of trivially-copyable entries: Push and Pop allocate nothing beyond
// amortized vector growth, and handles are (slot, generation) pairs that
// go inert when the slot is recycled.
//
// Cancellation frees the event closure immediately but leaves the heap
// entry in place to be skipped on pop; once enough cancelled entries pile
// up the heap is compacted in one pass, so cancel-heavy workloads (RPC
// deadline timers that are almost always cancelled) stay bounded.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/time.h"

namespace odsim {

using EventFn = std::function<void()>;

class EventQueue;

// Handle that allows cancelling a scheduled event.  Copyable; all copies
// refer to the same event.  A handle is only valid while its queue is
// alive: cancel timers before destroying the simulator that owns them
// (destruction order already guarantees this everywhere in the tree).
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet.  Idempotent.
  void Cancel();

  // True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, uint32_t slot, uint32_t gen)
      : queue_(queue), slot_(slot), gen_(gen) {}

  EventQueue* queue_ = nullptr;
  uint32_t slot_ = 0;
  uint32_t gen_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Inserts an event; returns a handle usable for cancellation.
  EventHandle Push(SimTime at, EventFn fn);

  bool empty() const;

  // Time of the earliest non-cancelled event.  Requires !empty().
  SimTime NextTime() const;

  // Removes and returns the earliest non-cancelled event.  Requires !empty().
  struct Popped {
    SimTime time;
    EventFn fn;
  };
  Popped Pop();

  // Pops the earliest event into `out` if one exists at or before
  // `deadline`; returns false (leaving `out` alone) otherwise.  The
  // simulator main loops use this to make one top-of-heap inspection per
  // event instead of three (empty / NextTime / Pop).
  bool PopIfAtOrBefore(SimTime deadline, Popped* out);

  size_t size_for_testing() const { return heap_.size(); }
  // Cancelled entries still occupying the heap (awaiting skip/compaction).
  size_t cancelled_count_for_testing() const { return cancelled_pending_; }

 private:
  friend class EventHandle;

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  // 16 trivially-copyable bytes: the sequence number lives in the high 40
  // bits of seq_slot and the arena slot in the low 24, so comparing
  // seq_slot orders by sequence (sequences are unique, so the slot bits
  // never decide).  The heap is 4-ary: one 16-byte entry makes each
  // 4-child sibling group exactly one cache line, and the shallower tree
  // roughly halves the cache misses per sift compared to a binary heap.
  // (time, seq) is a strict total order, so the pop sequence is
  // independent of heap arity and internal layout.
  struct HeapEntry {
    SimTime time;
    uint64_t seq_slot;

    uint32_t slot() const { return static_cast<uint32_t>(seq_slot & kSlotMask); }
  };
  static constexpr int kSlotBits = 24;
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;
  static bool EarlierEntry(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq_slot < b.seq_slot;
  }
  struct Slot {
    EventFn fn;
    uint32_t gen = 0;
    bool cancelled = false;
    uint32_t next_free = kNoSlot;
  };

  uint32_t AllocSlot();
  // Recycles a slot whose heap entry is gone; bumps gen so stale handles
  // are inert.  Const so SkipCancelled can call it; touches only the
  // mutable arena state.
  void FreeSlot(uint32_t slot) const;
  void CancelSlot(uint32_t slot, uint32_t gen);
  bool SlotPending(uint32_t slot, uint32_t gen) const;
  // One-pass removal of all cancelled entries followed by a heap rebuild.
  void Compact();

  // 4-ary heap primitives over heap_.  Const because SkipCancelled needs
  // them; they touch only the mutable heap state.
  void SiftUp(size_t i) const;
  void SiftDown(size_t i) const;
  // Removes heap_[0], preserving the heap property.
  void RemoveTop() const;

  // Drops cancelled events from the top of the heap.  Const because the
  // queue's logical contents don't change, matching empty()/NextTime().
  void SkipCancelled() const;

  mutable std::vector<HeapEntry> heap_;
  mutable std::vector<Slot> slots_;
  mutable uint32_t free_head_ = kNoSlot;
  mutable size_t cancelled_pending_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace odsim

#endif  // SRC_SIM_EVENT_QUEUE_H_
