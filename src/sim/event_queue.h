// Pending-event set for the discrete-event simulator.
//
// Events at equal timestamps fire in scheduling order (FIFO), which the
// sequence number guarantees.  Cancellation is handled lazily: cancelled
// events stay in the heap but are skipped on pop.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace odsim {

using EventFn = std::function<void()>;

// Handle that allows cancelling a scheduled event.  Copyable; all copies
// refer to the same event.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet.  Idempotent.
  void Cancel();

  // True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class EventQueue {
 public:
  // Inserts an event; returns a handle usable for cancellation.
  EventHandle Push(SimTime at, EventFn fn);

  bool empty() const;

  // Time of the earliest non-cancelled event.  Requires !empty().
  SimTime NextTime() const;

  // Removes and returns the earliest non-cancelled event.  Requires !empty().
  struct Popped {
    SimTime time;
    EventFn fn;
  };
  Popped Pop();

  size_t size_for_testing() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    // Mutable via shared_ptr because priority_queue only exposes const top().
    std::shared_ptr<EventHandle::State> state;
    std::shared_ptr<EventFn> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Drops cancelled events from the top of the heap.
  void SkipCancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace odsim

#endif  // SRC_SIM_EVENT_QUEUE_H_
