// Simulated time.
//
// SimTime is a strong integer type counting microseconds since the start of
// the simulation.  Using integer ticks (not doubles) keeps event ordering
// exact and the simulation bit-for-bit deterministic.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <compare>
#include <cstdint>

#include "src/util/check.h"

namespace odsim {

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime Micros(int64_t us) { return SimTime(us); }
  static constexpr SimTime Millis(int64_t ms) { return SimTime(ms * 1000); }
  static constexpr SimTime Seconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime Minutes(double m) { return Seconds(m * 60.0); }
  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t micros() const { return us_; }
  constexpr double seconds() const { return static_cast<double>(us_) * 1e-6; }

  constexpr bool operator==(const SimTime&) const = default;
  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime other) const { return SimTime(us_ + other.us_); }
  constexpr SimTime operator-(SimTime other) const { return SimTime(us_ - other.us_); }
  SimTime& operator+=(SimTime other) {
    us_ += other.us_;
    return *this;
  }
  SimTime& operator-=(SimTime other) {
    us_ -= other.us_;
    return *this;
  }
  constexpr SimTime operator*(double k) const {
    return SimTime(static_cast<int64_t>(static_cast<double>(us_) * k + 0.5));
  }

 private:
  explicit constexpr SimTime(int64_t us) : us_(us) {}

  int64_t us_ = 0;
};

// A duration is represented by the same type; the distinction is positional
// (Schedule() takes a delay, ScheduleAt() takes an absolute time).
using SimDuration = SimTime;

}  // namespace odsim

#endif  // SRC_SIM_TIME_H_
