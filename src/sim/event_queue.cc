#include "src/sim/event_queue.h"

#include <utility>

#include "src/util/check.h"

namespace odsim {

void EventHandle::Cancel() {
  if (state_ && !state_->fired) {
    state_->cancelled = true;
  }
}

bool EventHandle::pending() const {
  return state_ && !state_->fired && !state_->cancelled;
}

EventHandle EventQueue::Push(SimTime at, EventFn fn) {
  auto state = std::make_shared<EventHandle::State>();
  heap_.push(Entry{at, next_seq_++, state, std::make_shared<EventFn>(std::move(fn))});
  return EventHandle(state);
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && heap_.top().state->cancelled) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  SkipCancelled();
  return heap_.empty();
}

SimTime EventQueue::NextTime() const {
  SkipCancelled();
  OD_CHECK(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Popped EventQueue::Pop() {
  SkipCancelled();
  OD_CHECK(!heap_.empty());
  Entry top = heap_.top();
  heap_.pop();
  top.state->fired = true;
  return Popped{top.time, std::move(*top.fn)};
}

}  // namespace odsim
