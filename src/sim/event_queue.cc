#include "src/sim/event_queue.h"

#include <utility>

#include "src/util/check.h"

namespace odsim {

namespace {
constexpr size_t kArity = 4;
// Compact once at least this many cancelled entries have accumulated AND
// they outnumber live entries; small queues just skip-on-pop.
constexpr size_t kCompactMinCancelled = 64;
}  // namespace

void EventHandle::Cancel() {
  if (queue_ != nullptr) {
    queue_->CancelSlot(slot_, gen_);
  }
}

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->SlotPending(slot_, gen_);
}

uint32_t EventQueue::AllocSlot() {
  if (free_head_ != kNoSlot) {
    uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  OD_CHECK(slots_.size() < (size_t{1} << kSlotBits));
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::FreeSlot(uint32_t slot) const {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  s.cancelled = false;
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::SiftUp(size_t i) const {
  HeapEntry e = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / kArity;
    if (!EarlierEntry(e, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::SiftDown(size_t i) const {
  const size_t n = heap_.size();
  HeapEntry e = heap_[i];
  for (;;) {
    size_t first = i * kArity + 1;
    if (first >= n) {
      break;
    }
    size_t last = first + kArity < n ? first + kArity : n;
    size_t best = first;
    for (size_t c = first + 1; c < last; ++c) {
      if (EarlierEntry(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!EarlierEntry(heap_[best], e)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::RemoveTop() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
}

EventHandle EventQueue::Push(SimTime at, EventFn fn) {
  uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push_back(
      HeapEntry{at, (next_seq_++ << kSlotBits) | uint64_t{slot}});
  SiftUp(heap_.size() - 1);
  return EventHandle(this, slot, s.gen);
}

void EventQueue::CancelSlot(uint32_t slot, uint32_t gen) {
  if (slot >= slots_.size()) {
    return;
  }
  Slot& s = slots_[slot];
  if (s.gen != gen || s.cancelled) {
    return;  // Already fired, cancelled, or the slot was recycled.
  }
  s.cancelled = true;
  s.fn = nullptr;  // Release the closure (and anything it keeps alive) now.
  ++cancelled_pending_;
  if (cancelled_pending_ >= kCompactMinCancelled &&
      cancelled_pending_ * 2 > heap_.size()) {
    Compact();
  }
}

bool EventQueue::SlotPending(uint32_t slot, uint32_t gen) const {
  if (slot >= slots_.size()) {
    return false;
  }
  const Slot& s = slots_[slot];
  return s.gen == gen && !s.cancelled;
}

void EventQueue::Compact() {
  auto keep = heap_.begin();
  for (const HeapEntry& e : heap_) {
    if (slots_[e.slot()].cancelled) {
      FreeSlot(e.slot());
    } else {
      *keep++ = e;
    }
  }
  heap_.erase(keep, heap_.end());
  for (size_t i = heap_.size() / kArity + 1; i-- > 0;) {
    if (i < heap_.size()) {
      SiftDown(i);
    }
  }
  cancelled_pending_ = 0;
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && slots_[heap_.front().slot()].cancelled) {
    uint32_t slot = heap_.front().slot();
    RemoveTop();
    FreeSlot(slot);
    --cancelled_pending_;
  }
}

bool EventQueue::empty() const {
  SkipCancelled();
  return heap_.empty();
}

SimTime EventQueue::NextTime() const {
  SkipCancelled();
  OD_CHECK(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Popped EventQueue::Pop() {
  SkipCancelled();
  OD_CHECK(!heap_.empty());
  HeapEntry top = heap_.front();
  RemoveTop();
  Popped popped{top.time, std::move(slots_[top.slot()].fn)};
  FreeSlot(top.slot());
  return popped;
}

bool EventQueue::PopIfAtOrBefore(SimTime deadline, Popped* out) {
  SkipCancelled();
  if (heap_.empty() || heap_.front().time > deadline) {
    return false;
  }
  HeapEntry top = heap_.front();
  RemoveTop();
  out->time = top.time;
  out->fn = std::move(slots_[top.slot()].fn);
  FreeSlot(top.slot());
  return true;
}

}  // namespace odsim
