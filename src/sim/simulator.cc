#include "src/sim/simulator.h"

#include <utility>

#include "src/util/check.h"

namespace odsim {

Simulator::Simulator() : now_(SimTime::Zero()) {}

EventHandle Simulator::Schedule(SimDuration delay, EventFn fn) {
  OD_CHECK(delay >= SimDuration::Zero());
  return queue_.Push(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(SimTime at, EventFn fn) {
  OD_CHECK(at >= now_);
  return queue_.Push(at, std::move(fn));
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    auto [time, fn] = queue_.Pop();
    OD_CHECK(time >= now_);
    now_ = time;
    fn();
  }
}

void Simulator::RunUntil(SimTime deadline) {
  OD_CHECK(deadline >= now_);
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.NextTime() <= deadline) {
    auto [time, fn] = queue_.Pop();
    now_ = time;
    fn();
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
}

std::vector<ProcessId> Simulator::RunnablePids() const {
  std::vector<ProcessId> pids;
  pids.reserve(run_queue_.size());
  for (const WorkItem& item : run_queue_) {
    pids.push_back(item.pid);
  }
  return pids;
}

void Simulator::AddCpuObserver(CpuObserver* observer) {
  OD_CHECK(observer != nullptr);
  cpu_observers_.push_back(observer);
}

void Simulator::set_cpu_quantum(SimDuration quantum) {
  OD_CHECK(quantum > SimDuration::Zero());
  OD_CHECK(run_queue_.empty());
  quantum_ = quantum;
}

void Simulator::set_cpu_speed(double speed) {
  OD_CHECK(speed > 0.0 && speed <= 1.0);
  cpu_speed_ = speed;
}

void Simulator::SetContext(SimTime now, ProcessId pid, ProcedureId proc) {
  if (pid == current_pid_ && proc == current_proc_) {
    return;
  }
  current_pid_ = pid;
  current_proc_ = proc;
  for (CpuObserver* observer : cpu_observers_) {
    observer->OnCpuContextSwitch(now, pid, proc, pid != kIdlePid);
  }
}

void Simulator::SubmitWork(ProcessId pid, ProcedureId proc, SimDuration work,
                           EventFn on_complete) {
  OD_CHECK(work > SimDuration::Zero());
  run_queue_.push_back(WorkItem{pid, proc, work, std::move(on_complete)});
  if (!cpu_dispatching_) {
    Dispatch(now_);
  }
}

void Simulator::Dispatch(SimTime now) {
  if (run_queue_.empty()) {
    cpu_dispatching_ = false;
    SetContext(now, kIdlePid, kIdleProc);
    return;
  }
  cpu_dispatching_ = true;
  WorkItem& item = run_queue_.front();
  SetContext(now, item.pid, item.proc);
  // The slice is bounded by the quantum in wall time; at reduced clock
  // speed it consumes proportionally less of the item's remaining work.
  SimDuration max_work_this_quantum = quantum_ * cpu_speed_;
  SimDuration work =
      item.remaining < max_work_this_quantum ? item.remaining : max_work_this_quantum;
  SimDuration wall = work * (1.0 / cpu_speed_);
  slice_end_ = queue_.Push(now + wall, [this, work] {
    OD_CHECK(!run_queue_.empty());
    WorkItem& front = run_queue_.front();
    front.remaining -= work;
    if (front.remaining <= SimDuration::Zero()) {
      EventFn done = std::move(front.on_complete);
      run_queue_.pop_front();
      if (done) {
        done();
      }
    } else if (run_queue_.size() > 1) {
      // Round-robin rotation.
      WorkItem rotated = std::move(run_queue_.front());
      run_queue_.pop_front();
      run_queue_.push_back(std::move(rotated));
    }
    Dispatch(now_);
  });
}

}  // namespace odsim
