#include "src/sim/simulator.h"

#include <utility>

#include "src/util/check.h"

namespace odsim {

Simulator::Simulator() : now_(SimTime::Zero()) {}

EventHandle Simulator::Schedule(SimDuration delay, EventFn fn) {
  OD_CHECK(delay >= SimDuration::Zero());
  return queue_.Push(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(SimTime at, EventFn fn) {
  OD_CHECK(at >= now_);
  return queue_.Push(at, std::move(fn));
}

void Simulator::Run() {
  stopped_ = false;
  EventQueue::Popped popped;
  while (!stopped_ && queue_.PopIfAtOrBefore(SimTime::Max(), &popped)) {
    OD_CHECK(popped.time >= now_);
    now_ = popped.time;
    ++events_processed_;
    popped.fn();
  }
}

void Simulator::RunUntil(SimTime deadline) {
  OD_CHECK(deadline >= now_);
  stopped_ = false;
  EventQueue::Popped popped;
  while (!stopped_ && queue_.PopIfAtOrBefore(deadline, &popped)) {
    now_ = popped.time;
    ++events_processed_;
    popped.fn();
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
}

std::vector<ProcessId> Simulator::RunnablePids() const {
  std::vector<ProcessId> pids;
  pids.reserve(run_queue_.size());
  for (const WorkItem& item : run_queue_) {
    pids.push_back(item.pid);
  }
  return pids;
}

void Simulator::set_cpu_quantum(SimDuration quantum) {
  OD_CHECK(quantum > SimDuration::Zero());
  OD_CHECK(run_queue_.empty());
  quantum_ = quantum;
}

void Simulator::set_cpu_speed(double speed) {
  OD_CHECK(speed > 0.0 && speed <= 1.0);
  cpu_speed_ = speed;
}

void Simulator::SetContext(SimTime now, ProcessId pid, ProcedureId proc) {
  if (pid == current_pid_ && proc == current_proc_) {
    return;
  }
  current_pid_ = pid;
  current_proc_ = proc;
  const bool busy = pid != kIdlePid;
  for (const CpuSwitchHook& hook : cpu_observers_) {
    hook.fn(hook.object, now, pid, proc, busy);
  }
}

void Simulator::SubmitWork(ProcessId pid, ProcedureId proc, SimDuration work,
                           EventFn on_complete) {
  OD_CHECK(work > SimDuration::Zero());
  run_queue_.push_back(WorkItem{pid, proc, work, std::move(on_complete)});
  if (!cpu_dispatching_) {
    Dispatch(now_);
  }
}

void Simulator::Dispatch(SimTime now) {
  if (run_queue_.empty()) {
    cpu_dispatching_ = false;
    SetContext(now, kIdlePid, kIdleProc);
    return;
  }
  cpu_dispatching_ = true;
  WorkItem& item = run_queue_.front();
  SetContext(now, item.pid, item.proc);
  // The slice is bounded by the quantum in wall time; at reduced clock
  // speed it consumes proportionally less of the item's remaining work.
  SimDuration max_work_this_quantum = quantum_ * cpu_speed_;
  if (max_work_this_quantum <= SimDuration::Zero()) {
    // quantum * speed rounded to zero microseconds (sub-µs quantum or
    // extreme clock scaling).  A zero-length slice would reschedule at the
    // same timestamp forever; guarantee at least 1 µs of work per slice.
    max_work_this_quantum = SimDuration::Micros(1);
  }
  SimDuration work =
      item.remaining < max_work_this_quantum ? item.remaining : max_work_this_quantum;
  SimDuration wall = work * (1.0 / cpu_speed_);
  // Minimum-progress invariant: every slice advances the clock and retires
  // work.  wall >= work holds because speed <= 1 and SimTime scaling
  // rounds half-up, so the per-slice wall/work rounding drift is at most
  // half a microsecond and never goes negative.
  OD_CHECK(work > SimDuration::Zero() && wall >= work);
  slice_end_ = queue_.Push(now + wall, [this, work] {
    OD_CHECK(!run_queue_.empty());
    WorkItem& front = run_queue_.front();
    front.remaining -= work;
    if (front.remaining <= SimDuration::Zero()) {
      EventFn done = std::move(front.on_complete);
      run_queue_.pop_front();
      if (done) {
        done();
      }
    } else if (run_queue_.size() > 1) {
      // Round-robin rotation.
      WorkItem rotated = std::move(run_queue_.front());
      run_queue_.pop_front();
      run_queue_.push_back(std::move(rotated));
    }
    Dispatch(now_);
  });
}

}  // namespace odsim
