// Simulated processes and procedures.
//
// PowerScope attributes energy to the process and procedure executing at
// each sample, so every piece of simulated CPU work carries a (pid,
// procedure) label.  The ProcessTable interns names to small integer ids.
// Pid 0 is always the kernel idle loop ("Idle" in the paper's profiles, a
// Pentium hlt instruction).

#ifndef SRC_SIM_PROCESS_H_
#define SRC_SIM_PROCESS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace odsim {

using ProcessId = int32_t;
using ProcedureId = int32_t;

inline constexpr ProcessId kIdlePid = 0;
inline constexpr ProcedureId kIdleProc = 0;

class ProcessTable {
 public:
  ProcessTable();

  // Interns a process name; returns the existing id if already registered.
  ProcessId RegisterProcess(std::string_view name);

  // Interns a procedure name (global namespace, shared across processes,
  // mirroring symbol-table lookup in the real PowerScope).
  ProcedureId RegisterProcedure(std::string_view name);

  const std::string& ProcessName(ProcessId pid) const;
  const std::string& ProcedureName(ProcedureId proc) const;

  int process_count() const { return static_cast<int>(process_names_.size()); }
  int procedure_count() const { return static_cast<int>(procedure_names_.size()); }

 private:
  std::vector<std::string> process_names_;
  std::vector<std::string> procedure_names_;
  std::unordered_map<std::string, ProcessId> process_ids_;
  std::unordered_map<std::string, ProcedureId> procedure_ids_;
};

}  // namespace odsim

#endif  // SRC_SIM_PROCESS_H_
