#include "src/sim/process.h"

#include "src/util/check.h"

namespace odsim {

ProcessTable::ProcessTable() {
  // Pid 0 / procedure 0 are reserved for the kernel idle loop.
  ProcessId idle_pid = RegisterProcess("Idle");
  ProcedureId idle_proc = RegisterProcedure("_cpu_halt");
  OD_CHECK(idle_pid == kIdlePid);
  OD_CHECK(idle_proc == kIdleProc);
}

ProcessId ProcessTable::RegisterProcess(std::string_view name) {
  std::string key(name);
  auto it = process_ids_.find(key);
  if (it != process_ids_.end()) {
    return it->second;
  }
  ProcessId id = static_cast<ProcessId>(process_names_.size());
  process_names_.push_back(key);
  process_ids_.emplace(std::move(key), id);
  return id;
}

ProcedureId ProcessTable::RegisterProcedure(std::string_view name) {
  std::string key(name);
  auto it = procedure_ids_.find(key);
  if (it != procedure_ids_.end()) {
    return it->second;
  }
  ProcedureId id = static_cast<ProcedureId>(procedure_names_.size());
  procedure_names_.push_back(key);
  procedure_ids_.emplace(std::move(key), id);
  return id;
}

const std::string& ProcessTable::ProcessName(ProcessId pid) const {
  OD_CHECK(pid >= 0 && pid < process_count());
  return process_names_[static_cast<size_t>(pid)];
}

const std::string& ProcessTable::ProcedureName(ProcedureId proc) const {
  OD_CHECK(proc >= 0 && proc < procedure_count());
  return procedure_names_[static_cast<size_t>(proc)];
}

}  // namespace odsim
